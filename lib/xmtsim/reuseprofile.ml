(* Reuse-profile harvest for the analytical prediction mode — see
   reuseprofile.mli.  The collector is fed by the functional
   interpreter ({!Functional_mode} with [?profile]): every executed
   instruction, every memory access (with its address) and every
   spawn/join/thread boundary passes through the hooks below. *)

module I = Isa.Instr

(* ---------------- bounded LRU stack-distance tracker ---------------- *)

(* One tracker per (stream, line granularity): a move-to-front list over
   line ids with a hash index.  Recency updates are O(1); measuring a
   stack distance walks the list to the hit position (cheap under
   temporal locality), so only every [sample_period]-th eligible reuse
   is measured — the rest still update recency, keeping measured
   distances exact.  Capacity is bounded at [depth] lines: colder reuses
   land in the [beyond] bucket.  Memory is O(depth).

   Concurrency-aware classification: the functional interpreter runs
   virtual threads sequentially, but on the real machine threads run
   [num_tcus] at a time, so a line touched by several "adjacent" threads
   is fetched once and *waited on by all of them* (they park in the
   cache module's MSHR while the fill is in flight) — those are not
   hits.  Each access therefore carries a virtual-TCU id; a reuse by a
   *different* vTCU within [window] accesses of the line's (re)fill is
   counted as a {e co-miss}: it pays miss latency but shares the fill.
   Same-vTCU reuses are always eligible (a TCU's loads block, so its own
   reuses are sequential by construction), as are reuses of lines older
   than the fill window (the line is resident by then). *)

type node = {
  mutable line : int;
  mutable prev : node;  (* towards MRU *)
  mutable next : node;  (* towards LRU *)
  mutable fill_at : int;  (* stream clock at the line's (re)install *)
  mutable last_vtcu : int;
}

type stack = {
  gran_words : int;  (* line granularity in words *)
  depth : int;
  sample_period : int;
  window : int;  (* co-miss window, in accesses since the line's fill *)
  line_sampling : int;
      (* spatial sampling rate (power of two): only lines whose hash
         lands in the 1/rate sample set are tracked, and measured
         distances are scaled back by the rate (SHARDS-style).  Counts
         are unbiased in ratio; memory and time shrink by the rate. *)
  buckets : int array;
      (* buckets.(0) counts distance 1; buckets.(i) distances in
         (2^(i-1), 2^i] *)
  mutable beyond : int;  (* measured reuses past [depth] *)
  mutable sampled : int;  (* eligible reuses measured *)
  mutable accesses : int;  (* tracked (sampled-line) accesses *)
  mutable clock : int;  (* all stream accesses, incl. unsampled lines *)
  mutable first_touch : int;  (* exact over tracked lines *)
  mutable comiss : int;  (* exact: cross-vTCU reuses inside the window *)
  mutable countdown : int;  (* eligible reuses until the next measured *)
  mutable size : int;
  sentinel : node;
  tbl : (int, node) Hashtbl.t;
}

let log2_ceil n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let make_stack ~gran_words ~depth ~sample_period ~window ~line_sampling =
  let rec sentinel =
    { line = min_int; prev = sentinel; next = sentinel; fill_at = 0; last_vtcu = -1 }
  in
  {
    gran_words;
    depth;
    sample_period;
    window;
    line_sampling;
    buckets = Array.make (log2_ceil depth + 1) 0;
    beyond = 0;
    sampled = 0;
    accesses = 0;
    clock = 0;
    first_touch = 0;
    comiss = 0;
    countdown = 0;
    size = 0;
    sentinel;
    tbl = Hashtbl.create 1024;
  }

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front st n =
  n.next <- st.sentinel.next;
  n.prev <- st.sentinel;
  st.sentinel.next.prev <- n;
  st.sentinel.next <- n

(* position of [target] in the list, 1-based from the MRU end *)
let stack_position st target =
  let rec go n d = if n == target then d else go n.next (d + 1) in
  go st.sentinel.next 1

let record_distance st d =
  if d <= st.depth then begin
    let b = if d <= 1 then 0 else log2_ceil d in
    st.buckets.(b) <- st.buckets.(b) + 1
  end
  else st.beyond <- st.beyond + 1

(* Fibonacci-style multiplicative line hash; the high bits decide
   sample-set membership so sequential line ids scatter uniformly. *)
let in_sample st line =
  st.line_sampling = 1
  || (line * 0x9E3779B97F4A7C1) lsr 40 land (st.line_sampling - 1) = 0

let stack_access st ~word ~vtcu =
  let line = word / st.gran_words in
  st.clock <- st.clock + 1;
  if in_sample st line then begin
    st.accesses <- st.accesses + 1;
    match Hashtbl.find_opt st.tbl line with
    | Some n ->
      if n.last_vtcu <> vtcu && st.clock - n.fill_at <= st.window then
        (* a concurrent sibling's access: waits on the in-flight fill *)
        st.comiss <- st.comiss + 1
      else begin
        (* eligible reuse: sampled stack-distance measurement, scaled
           back from the sampled line space to the full one *)
        if st.countdown = 0 then begin
          st.countdown <- st.sample_period - 1;
          st.sampled <- st.sampled + 1;
          record_distance st (stack_position st n * st.line_sampling)
        end
        else st.countdown <- st.countdown - 1
      end;
      n.last_vtcu <- vtcu;
      unlink n;
      push_front st n
    | None ->
      st.first_touch <- st.first_touch + 1;
      if st.size * st.line_sampling >= st.depth then begin
        (* evict the LRU line; reuse its node *)
        let lru = st.sentinel.prev in
        Hashtbl.remove st.tbl lru.line;
        unlink lru;
        lru.line <- line;
        lru.fill_at <- st.clock;
        lru.last_vtcu <- vtcu;
        Hashtbl.replace st.tbl line lru;
        push_front st lru
      end
      else begin
        let rec n =
          { line; prev = n; next = n; fill_at = st.clock; last_vtcu = vtcu }
        in
        Hashtbl.replace st.tbl line n;
        push_front st n;
        st.size <- st.size + 1
      end
  end

(* ---------------- per-spawn-block instruction mixes ---------------- *)

let classes = Array.of_list I.all_fu_classes
let nclasses = Array.length classes

(* branch-free index into [classes] (declaration order matches
   [all_fu_classes]); this sits on the per-instruction hot path *)
let class_index = function
  | I.FU_ALU -> 0
  | I.FU_BR -> 1
  | I.FU_SFT -> 2
  | I.FU_MDU -> 3
  | I.FU_FPU -> 4
  | I.FU_MEM -> 5
  | I.FU_PS -> 6
  | I.FU_CTRL -> 7

type block = {
  b_pc : int;  (* spawn instruction index; -1 = the serial (master) block *)
  mutable b_activations : int;
  mutable b_threads : int;
  mutable b_instructions : int;
  b_mix : int array;  (* indexed like Isa.Instr.all_fu_classes *)
  mutable b_muls : int;  (* MDU ops that are multiplies (rest divide) *)
  mutable b_fpu_divs : int;  (* FPU ops that are fdiv/fsqrt *)
  mutable b_loads : int;
  mutable b_ro_loads : int;
  mutable b_stores : int;
  mutable b_nb_stores : int;
  mutable b_psm : int;
  mutable b_prefetch : int;
  mutable b_fences : int;
}

let make_block pc =
  {
    b_pc = pc;
    b_activations = 0;
    b_threads = 0;
    b_instructions = 0;
    b_mix = Array.make nclasses 0;
    b_muls = 0;
    b_fpu_divs = 0;
    b_loads = 0;
    b_ro_loads = 0;
    b_stores = 0;
    b_nb_stores = 0;
    b_psm = 0;
    b_prefetch = 0;
    b_fences = 0;
  }

(* ---------------- the collector ---------------- *)

type t = {
  blocks : (int, block) Hashtbl.t;
  mutable current : block;  (* the serial block outside spawns *)
  serial : block;
  mutable instructions : int;
  mutable master_instructions : int;
  mutable spawns : int;
  mutable accesses : int;
  sample_period : int;
  stack_depth : int;
  streams : int;  (* virtual TCUs threads are dealt onto *)
  mutable vtcu : int;  (* stream of the currently-running thread *)
  mutable thread_seq : int;  (* activation counter inside the open spawn *)
  (* stacks.(s).(g): stream class s at granularity g *)
  stream_names : string array;
  stacks : stack array array;
}

let default_granularities = [ 1; 4 ]
let default_depth = 16384
let default_sample_period = 8
let default_streams = 64
let default_line_sampling = 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(granularities = default_granularities) ?(depth = default_depth)
    ?(sample_period = default_sample_period) ?(streams = default_streams)
    ?window ?(line_sampling = default_line_sampling) () =
  if granularities = [] then invalid_arg "Reuseprofile.create: no granularities";
  List.iter
    (fun g ->
      if g < 1 then invalid_arg "Reuseprofile.create: granularity < 1 word")
    granularities;
  if depth < 2 then invalid_arg "Reuseprofile.create: depth < 2";
  if sample_period < 1 then invalid_arg "Reuseprofile.create: sample_period < 1";
  if streams < 1 then invalid_arg "Reuseprofile.create: streams < 1";
  if not (is_pow2 line_sampling) then
    invalid_arg "Reuseprofile.create: line_sampling must be a power of two";
  let window = Option.value window ~default:streams in
  if window < 0 then invalid_arg "Reuseprofile.create: window < 0";
  let serial = make_block (-1) in
  serial.b_activations <- 1;
  let blocks = Hashtbl.create 16 in
  Hashtbl.replace blocks (-1) serial;
  let stream_names = [| "tcu_rw"; "tcu_ro"; "master" |] in
  {
    blocks;
    current = serial;
    serial;
    instructions = 0;
    master_instructions = 0;
    spawns = 0;
    accesses = 0;
    sample_period;
    stack_depth = depth;
    streams;
    vtcu = 0;
    thread_seq = 0;
    stream_names;
    stacks =
      Array.map
        (fun _ ->
          Array.of_list
            (List.map
               (fun gran_words ->
                 make_stack ~gran_words ~depth ~sample_period ~window
                   ~line_sampling)
               granularities))
        stream_names;
  }

let on_instr t ~master ins =
  t.instructions <- t.instructions + 1;
  if master then t.master_instructions <- t.master_instructions + 1;
  let b = t.current in
  b.b_instructions <- b.b_instructions + 1;
  let i = class_index (I.fu_class_of ins) in
  b.b_mix.(i) <- b.b_mix.(i) + 1;
  match ins with
  | I.Mdu (I.Mul, _, _, _) -> b.b_muls <- b.b_muls + 1
  | I.Fpu (I.Fdiv, _, _, _) | I.Fpu1 (I.Fsqrt, _, _) ->
    b.b_fpu_divs <- b.b_fpu_divs + 1
  | _ -> ()

let s_rw = 0
let s_ro = 1
let s_master = 2

let on_access t ~master ~ro ~nb ~kind ~addr =
  let b = t.current in
  let stream =
    match kind with
    | `Load ->
      b.b_loads <- b.b_loads + 1;
      if ro then b.b_ro_loads <- b.b_ro_loads + 1;
      if master then s_master else if ro then s_ro else s_rw
    | `Store ->
      b.b_stores <- b.b_stores + 1;
      if nb then b.b_nb_stores <- b.b_nb_stores + 1;
      if master then s_master else s_rw
    | `Psm ->
      b.b_psm <- b.b_psm + 1;
      if master then s_master else s_rw
    | `Prefetch ->
      b.b_prefetch <- b.b_prefetch + 1;
      if master then s_master else if ro then s_ro else s_rw
  in
  t.accesses <- t.accesses + 1;
  let word = addr asr 2 in
  let vtcu = if master then -1 else t.vtcu in
  Array.iter (fun st -> stack_access st ~word ~vtcu) t.stacks.(stream)

let on_thread t =
  t.vtcu <- t.thread_seq mod t.streams;
  t.thread_seq <- t.thread_seq + 1

let on_fence t = t.current.b_fences <- t.current.b_fences + 1

let enter_spawn t ~pc ~threads =
  t.spawns <- t.spawns + 1;
  let b =
    match Hashtbl.find_opt t.blocks pc with
    | Some b -> b
    | None ->
      let b = make_block pc in
      Hashtbl.replace t.blocks pc b;
      b
  in
  b.b_activations <- b.b_activations + 1;
  b.b_threads <- b.b_threads + threads;
  t.thread_seq <- 0;
  t.vtcu <- 0;
  t.current <- b

let exit_spawn t =
  t.current <- t.serial;
  t.vtcu <- 0

(* ---------------- the immutable snapshot ---------------- *)

type histogram = {
  h_granularity_words : int;
  h_depth : int;
  h_window : int;
  h_line_sampling : int;
  h_accesses : int;
  h_first_touch : int;
  h_comiss : int;
  h_sampled : int;
  h_beyond : int;
  h_buckets : int array;
}

type block_info = {
  pc : int;
  activations : int;
  threads : int;
  instructions : int;
  mix : (string * int) list;
  muls : int;
  fpu_divs : int;
  loads : int;
  ro_loads : int;
  stores : int;
  nb_stores : int;
  psm : int;
  prefetch : int;
  fences : int;
}

type snapshot = {
  p_instructions : int;
  p_master_instructions : int;
  p_spawns : int;
  p_accesses : int;
  p_sample_period : int;
  p_streams_dealt : int;
  p_blocks : block_info list;  (* serial block first, then by spawn pc *)
  p_streams : (string * histogram list) list;
}

let snapshot t =
  let block_info (b : block) =
    {
      pc = b.b_pc;
      activations = b.b_activations;
      threads = b.b_threads;
      instructions = b.b_instructions;
      mix =
        List.filteri
          (fun i _ -> b.b_mix.(i) > 0)
          (Array.to_list
             (Array.mapi
                (fun i c -> (I.fu_class_name c, b.b_mix.(i)))
                classes));
      muls = b.b_muls;
      fpu_divs = b.b_fpu_divs;
      loads = b.b_loads;
      ro_loads = b.b_ro_loads;
      stores = b.b_stores;
      nb_stores = b.b_nb_stores;
      psm = b.b_psm;
      prefetch = b.b_prefetch;
      fences = b.b_fences;
    }
  in
  let blocks =
    Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
    |> List.sort (fun a b -> compare a.b_pc b.b_pc)
    |> List.map block_info
  in
  let hist (st : stack) =
    {
      h_granularity_words = st.gran_words;
      h_depth = st.depth;
      h_window = st.window;
      h_line_sampling = st.line_sampling;
      h_accesses = st.accesses;
      h_first_touch = st.first_touch;
      h_comiss = st.comiss;
      h_sampled = st.sampled;
      h_beyond = st.beyond;
      h_buckets = Array.copy st.buckets;
    }
  in
  {
    p_instructions = t.instructions;
    p_master_instructions = t.master_instructions;
    p_spawns = t.spawns;
    p_accesses = t.accesses;
    p_sample_period = t.sample_period;
    p_streams_dealt = t.streams;
    p_blocks = blocks;
    p_streams =
      Array.to_list
        (Array.mapi
           (fun s name -> (name, List.map hist (Array.to_list t.stacks.(s))))
           t.stream_names);
  }

(* ---------------- xmt.reuseprofile.v1 ---------------- *)

module J = Obs.Json

let to_json (p : snapshot) =
  let block_json b =
    J.Obj
      [
        ("pc", J.Int b.pc);
        ("activations", J.Int b.activations);
        ("threads", J.Int b.threads);
        ("instructions", J.Int b.instructions);
        ("mix", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) b.mix));
        ("muls", J.Int b.muls);
        ("fpu_divs", J.Int b.fpu_divs);
        ("loads", J.Int b.loads);
        ("ro_loads", J.Int b.ro_loads);
        ("stores", J.Int b.stores);
        ("nb_stores", J.Int b.nb_stores);
        ("psm", J.Int b.psm);
        ("prefetch", J.Int b.prefetch);
        ("fences", J.Int b.fences);
      ]
  in
  let hist_json h =
    J.Obj
      [
        ("granularity_words", J.Int h.h_granularity_words);
        ("depth", J.Int h.h_depth);
        ("window", J.Int h.h_window);
        ("line_sampling", J.Int h.h_line_sampling);
        ("accesses", J.Int h.h_accesses);
        ("first_touch", J.Int h.h_first_touch);
        ("comiss", J.Int h.h_comiss);
        ("sampled", J.Int h.h_sampled);
        ("beyond", J.Int h.h_beyond);
        ( "buckets",
          J.List (Array.to_list (Array.map (fun n -> J.Int n) h.h_buckets)) );
      ]
  in
  J.Obj
    [
      ("schema", J.Str "xmt.reuseprofile.v1");
      ("instructions", J.Int p.p_instructions);
      ("master_instructions", J.Int p.p_master_instructions);
      ("spawns", J.Int p.p_spawns);
      ("accesses", J.Int p.p_accesses);
      ("sample_period", J.Int p.p_sample_period);
      ("streams_dealt", J.Int p.p_streams_dealt);
      ("blocks", J.List (List.map block_json p.p_blocks));
      ( "streams",
        J.List
          (List.map
             (fun (name, hists) ->
               J.Obj
                 [
                   ("stream", J.Str name);
                   ("histograms", J.List (List.map hist_json hists));
                 ])
             p.p_streams) );
    ]
