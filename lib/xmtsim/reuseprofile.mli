(** Reuse-profile harvest: the cheap-side input of the analytical
    prediction mode ({!Predict} in [lib/predict]).

    A functional run with a collector attached
    ([Functional_mode.run ~profile]) gathers, in one pass and bounded
    memory:

    - {e per-spawn-block instruction mixes} — executed-instruction
      counts per functional-unit class, keyed by the spawn instruction's
      index (the serial/master region is the pseudo-block [pc = -1]),
      plus activation, virtual-thread and memory-op counts per block
      (loads, read-only loads, stores, non-blocking stores, psm,
      prefetches, fences, and the multiply / float-divide splits the
      latency model needs);
    - {e concurrency-aware reuse-distance histograms} per address
      stream — TCU read-write, TCU read-only ([lwro]) and master — at
      several line granularities, via a bounded move-to-front (LRU
      stack-distance) tracker.  Recency is updated on every access;
      distances are measured on every [sample_period]-th {e eligible}
      reuse (so measured distances stay exact).  First touches are
      counted exactly.  Because the functional interpreter serializes
      threads that the real machine runs [num_tcus] at a time, each
      access carries a virtual-TCU id (threads are dealt round-robin
      onto [streams] ids): a reuse by a {e different} vTCU within
      [window] accesses of the line's (re)install is a {e co-miss} —
      on hardware those requests park on the in-flight DRAM fill
      (MSHR) and pay miss latency without issuing a second fill.
      Co-misses are counted exactly and excluded from the distance
      histogram;
    - {e spawn/join phase shape} — how many spawns executed and how
      many virtual threads each block ran.

    The {!snapshot} feeds the stack-distance hit-rate conversion and
    contention model of [Predict.Model]; {!to_json} serializes it as an
    [xmt.reuseprofile.v1] report. *)

type t

(** [create ()] with defaults: granularities [1; 4] words, [depth]
    16384 lines per tracker, [sample_period] 8, [streams] 64 virtual
    TCUs, co-miss [window] = [streams] accesses, [line_sampling] 1
    (exact).
    [line_sampling] (a power of two; 1 = exact) is SHARDS-style spatial
    sampling: only lines whose hash lands in the 1/rate sample set are
    tracked, measured distances are scaled back by the rate, and all
    tracker counters stay unbiased in ratio — the harvest's time and
    memory shrink by the rate.  Memory use is bounded by
    O(streams x granularities x depth / line_sampling), independent of
    run length. *)
val create :
  ?granularities:int list ->
  ?depth:int ->
  ?sample_period:int ->
  ?streams:int ->
  ?window:int ->
  ?line_sampling:int ->
  unit ->
  t

(** {2 Collector hooks} (called by {!Functional_mode}) *)

val on_instr : t -> master:bool -> Isa.Instr.t -> unit

val on_access :
  t ->
  master:bool ->
  ro:bool ->
  nb:bool ->
  kind:[ `Load | `Store | `Psm | `Prefetch ] ->
  addr:int ->
  unit

(** A new virtual thread started running inside the open spawn block
    (deals the thread onto the next vTCU stream). *)
val on_thread : t -> unit

val on_fence : t -> unit
val enter_spawn : t -> pc:int -> threads:int -> unit
val exit_spawn : t -> unit

(** {2 Snapshot} *)

type histogram = {
  h_granularity_words : int;
  h_depth : int;
  h_window : int;  (** co-miss window, in accesses *)
  h_line_sampling : int;  (** spatial sampling rate (1 = exact) *)
  h_accesses : int;  (** tracked (sampled-line) accesses *)
  h_first_touch : int;  (** compulsory misses over tracked lines *)
  h_comiss : int;  (** cross-vTCU reuses inside the window *)
  h_sampled : int;  (** eligible reuses whose distance was measured *)
  h_beyond : int;  (** measured reuses past [h_depth] *)
  h_buckets : int array;
      (** [h_buckets.(0)] counts stack distance 1; [h_buckets.(i)]
          distances in [(2^(i-1), 2^i]] (scaled back to the full line
          space when [h_line_sampling > 1]) *)
}

type block_info = {
  pc : int;  (** spawn instruction index; -1 = the serial block *)
  activations : int;
  threads : int;  (** virtual threads summed over activations *)
  instructions : int;
  mix : (string * int) list;  (** fu-class name -> executed count *)
  muls : int;  (** MDU ops that are multiplies (rest are divides) *)
  fpu_divs : int;  (** FPU ops that are fdiv/fsqrt (rest are add/mul) *)
  loads : int;
  ro_loads : int;
  stores : int;
  nb_stores : int;
  psm : int;
  prefetch : int;
  fences : int;
}

type snapshot = {
  p_instructions : int;
  p_master_instructions : int;
  p_spawns : int;
  p_accesses : int;
  p_sample_period : int;
  p_streams_dealt : int;  (** virtual TCUs threads were dealt onto *)
  p_blocks : block_info list;  (** serial block first, then by spawn pc *)
  p_streams : (string * histogram list) list;
      (** ["tcu_rw"], ["tcu_ro"], ["master"] *)
}

val snapshot : t -> snapshot

(** The [xmt.reuseprofile.v1] report. *)
val to_json : snapshot -> Obs.Json.t
