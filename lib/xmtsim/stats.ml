(** Instruction and activity counters (paper §III-B).

    Instruction counters record executed instructions per functional-unit
    class; activity counters monitor component state over time (TCU busy /
    memory-wait cycles, ICN traffic, cache hits/misses, DRAM accesses).
    Both can be read during the run (through the activity plug-in
    interface) and are reported at the end of the simulation. *)

type t = {
  mutable cycles : int;  (** simulated cycles at program completion *)
  instr_by_class : int array;  (** indexed by Instr.fu_class order *)
  mutable master_instrs : int;
  mutable tcu_instrs : int;
  (* activity counters *)
  mutable tcu_busy_cycles : int;
  mutable tcu_memwait_cycles : int;
  mutable tcu_fuwait_cycles : int;
  mutable tcu_pswait_cycles : int;
  mutable icn_packets : int;
  mutable icn_occupancy : int;  (** sum of in-flight packets per cycle *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rocache_hits : int;
  mutable rocache_misses : int;
  mutable master_cache_hits : int;
  mutable master_cache_misses : int;
  mutable dram_reads : int;
  mutable prefetch_hits : int;
  mutable prefetch_misses : int;  (** loads that found no buffered value *)
  mutable prefetch_late : int;
      (** loads that attached to a still-in-flight prefetch *)
  mutable prefetch_issued : int;
  mutable prefetch_evicted : int;
  mutable ps_ops : int;
  mutable psm_ops : int;
  mutable spawns : int;
  mutable virtual_threads : int;
  mutable nb_stores : int;
  mutable fences : int;
}

let fu_index c =
  let rec go i = function
    | [] -> invalid_arg "fu_index"
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 Isa.Instr.all_fu_classes

let create () =
  {
    cycles = 0;
    instr_by_class = Array.make (List.length Isa.Instr.all_fu_classes) 0;
    master_instrs = 0;
    tcu_instrs = 0;
    tcu_busy_cycles = 0;
    tcu_memwait_cycles = 0;
    tcu_fuwait_cycles = 0;
    tcu_pswait_cycles = 0;
    icn_packets = 0;
    icn_occupancy = 0;
    cache_hits = 0;
    cache_misses = 0;
    rocache_hits = 0;
    rocache_misses = 0;
    master_cache_hits = 0;
    master_cache_misses = 0;
    dram_reads = 0;
    prefetch_hits = 0;
    prefetch_misses = 0;
    prefetch_late = 0;
    prefetch_issued = 0;
    prefetch_evicted = 0;
    ps_ops = 0;
    psm_ops = 0;
    spawns = 0;
    virtual_threads = 0;
    nb_stores = 0;
    fences = 0;
  }

let count_instr t ~master ins =
  t.instr_by_class.(fu_index (Isa.Instr.fu_class_of ins)) <-
    t.instr_by_class.(fu_index (Isa.Instr.fu_class_of ins)) + 1;
  if master then t.master_instrs <- t.master_instrs + 1
  else t.tcu_instrs <- t.tcu_instrs + 1

let total_instrs t = t.master_instrs + t.tcu_instrs

let by_class t =
  List.mapi
    (fun i c -> (Isa.Instr.fu_class_name c, t.instr_by_class.(i)))
    Isa.Instr.all_fu_classes

(** Export every counter into a metrics registry (call once per fresh
    registry; counters accumulate).  Metric names follow the [sim.*]
    convention documented in the README's Observability section. *)
let export t (reg : Obs.Metrics.t) =
  let c ?labels name v = Obs.Metrics.inc ~by:v (Obs.Metrics.counter reg ?labels name) in
  let g ?labels name v = Obs.Metrics.set (Obs.Metrics.gauge reg ?labels name) v in
  c "sim.cycles" t.cycles;
  c ~labels:[ ("unit", "master") ] "sim.instructions" t.master_instrs;
  c ~labels:[ ("unit", "tcu") ] "sim.instructions" t.tcu_instrs;
  List.iter
    (fun (cls, v) -> c ~labels:[ ("class", cls) ] "sim.instructions_by_class" v)
    (by_class t);
  c "sim.spawns" t.spawns;
  c "sim.virtual_threads" t.virtual_threads;
  c "sim.tcu.busy_cycles" t.tcu_busy_cycles;
  c "sim.tcu.memwait_cycles" t.tcu_memwait_cycles;
  c "sim.tcu.fuwait_cycles" t.tcu_fuwait_cycles;
  c "sim.tcu.pswait_cycles" t.tcu_pswait_cycles;
  c "sim.icn.packets" t.icn_packets;
  c "sim.icn.occupancy" t.icn_occupancy;
  let cache name hits misses =
    c ~labels:[ ("cache", name); ("outcome", "hit") ] "sim.cache.accesses" hits;
    c ~labels:[ ("cache", name); ("outcome", "miss") ] "sim.cache.accesses" misses;
    let total = hits + misses in
    g ~labels:[ ("cache", name) ] "sim.cache.hit_rate"
      (if total = 0 then 0.0 else float_of_int hits /. float_of_int total)
  in
  cache "shared" t.cache_hits t.cache_misses;
  cache "ro" t.rocache_hits t.rocache_misses;
  cache "master" t.master_cache_hits t.master_cache_misses;
  c "sim.dram.reads" t.dram_reads;
  c "sim.prefetch.issued" t.prefetch_issued;
  c "sim.prefetch.hits" t.prefetch_hits;
  c "sim.prefetch.misses" t.prefetch_misses;
  c "sim.prefetch.late" t.prefetch_late;
  c "sim.prefetch.evicted" t.prefetch_evicted;
  c "sim.ps_ops" t.ps_ops;
  c "sim.psm_ops" t.psm_ops;
  c "sim.nb_stores" t.nb_stores;
  c "sim.fences" t.fences

let to_string t =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cycles:            %d\n" t.cycles;
  pf "instructions:      %d (master %d, TCU %d)\n" (total_instrs t)
    t.master_instrs t.tcu_instrs;
  List.iter (fun (n, c) -> if c > 0 then pf "  %-4s             %d\n" n c) (by_class t);
  pf "spawns:            %d (virtual threads %d)\n" t.spawns t.virtual_threads;
  pf "TCU busy cycles:   %d\n" t.tcu_busy_cycles;
  pf "TCU mem-wait:      %d  fu-wait: %d  ps-wait: %d\n" t.tcu_memwait_cycles
    t.tcu_fuwait_cycles t.tcu_pswait_cycles;
  pf "ICN packets:       %d\n" t.icn_packets;
  pf "cache hits/misses: %d/%d\n" t.cache_hits t.cache_misses;
  pf "master cache h/m:  %d/%d\n" t.master_cache_hits t.master_cache_misses;
  pf "ro-cache h/m:      %d/%d\n" t.rocache_hits t.rocache_misses;
  pf "DRAM reads:        %d\n" t.dram_reads;
  pf "prefetch issued/hit/late/evicted: %d/%d/%d/%d\n" t.prefetch_issued
    t.prefetch_hits t.prefetch_late t.prefetch_evicted;
  pf "ps/psm ops:        %d/%d\n" t.ps_ops t.psm_ops;
  pf "nb stores:         %d  fences: %d\n" t.nb_stores t.fences;
  Buffer.contents b
