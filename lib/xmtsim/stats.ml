(** Instruction and activity counters (paper §III-B).

    Instruction counters record executed instructions per functional-unit
    class; activity counters monitor component state over time (TCU busy /
    memory-wait cycles, ICN traffic, cache hits/misses, DRAM accesses).
    Both can be read during the run (through the activity plug-in
    interface) and are reported at the end of the simulation. *)

(* ------------------------------------------------------------------ *)
(* Memory-request lifecycle latencies (per (cluster, module) stage
   histograms).  The machine stamps every package at issue, ICN
   injection, module arrival, service completion and reply delivery;
   the deltas land here.  Integer cycle buckets keep the hot path to a
   couple of array writes per completed request. *)

type lat_hist = {
  lh_counts : int array;  (** per {!lat_bounds} bucket + overflow *)
  mutable lh_sum : int;
  mutable lh_count : int;
  mutable lh_min : int;
  mutable lh_max : int;
}

(** Upper bounds, in cycles, shared by every latency histogram. *)
let lat_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

type lat_stage = Licn_wait | Lservice_hit | Lservice_miss | Lreply | Ltotal

let all_lat_stages = [ Licn_wait; Lservice_hit; Lservice_miss; Lreply; Ltotal ]

let lat_stage_name = function
  | Licn_wait -> "icn_wait"
  | Lservice_hit -> "service_hit"
  | Lservice_miss -> "service_miss"
  | Lreply -> "reply"
  | Ltotal -> "total"

type req_latency = {
  rl_clusters : int;
  rl_modules : int;
  (* one histogram per (stage, cluster, module); index cl * modules + m *)
  rl_icn_wait : lat_hist array;
  rl_service_hit : lat_hist array;
  rl_service_miss : lat_hist array;
  rl_reply : lat_hist array;
  rl_total : lat_hist array;
}

let make_lat_hist () =
  {
    lh_counts = Array.make (Array.length lat_bounds + 1) 0;
    lh_sum = 0;
    lh_count = 0;
    lh_min = max_int;
    lh_max = min_int;
  }

let make_req_latency ~clusters ~modules =
  let mk () = Array.init (clusters * modules) (fun _ -> make_lat_hist ()) in
  {
    rl_clusters = clusters;
    rl_modules = modules;
    rl_icn_wait = mk ();
    rl_service_hit = mk ();
    rl_service_miss = mk ();
    rl_reply = mk ();
    rl_total = mk ();
  }

let lat_stage_hists rl = function
  | Licn_wait -> rl.rl_icn_wait
  | Lservice_hit -> rl.rl_service_hit
  | Lservice_miss -> rl.rl_service_miss
  | Lreply -> rl.rl_reply
  | Ltotal -> rl.rl_total

let observe_lat (h : lat_hist) v =
  let v = max 0 v in
  let nb = Array.length lat_bounds in
  let i = ref 0 in
  while !i < nb && v > lat_bounds.(!i) do
    incr i
  done;
  h.lh_counts.(!i) <- h.lh_counts.(!i) + 1;
  h.lh_sum <- h.lh_sum + v;
  h.lh_count <- h.lh_count + 1;
  if v < h.lh_min then h.lh_min <- v;
  if v > h.lh_max then h.lh_max <- v

let observe_req rl stage ~cluster ~module_ v =
  if cluster >= 0 && cluster < rl.rl_clusters && module_ >= 0
     && module_ < rl.rl_modules
  then observe_lat (lat_stage_hists rl stage).((cluster * rl.rl_modules) + module_) v

let copy_lat_hist h =
  { h with lh_counts = Array.copy h.lh_counts }

let copy_req_latency rl =
  {
    rl with
    rl_icn_wait = Array.map copy_lat_hist rl.rl_icn_wait;
    rl_service_hit = Array.map copy_lat_hist rl.rl_service_hit;
    rl_service_miss = Array.map copy_lat_hist rl.rl_service_miss;
    rl_reply = Array.map copy_lat_hist rl.rl_reply;
    rl_total = Array.map copy_lat_hist rl.rl_total;
  }

type t = {
  mutable cycles : int;  (** simulated cycles at program completion *)
  instr_by_class : int array;  (** indexed by Instr.fu_class order *)
  mutable master_instrs : int;
  mutable tcu_instrs : int;
  (* activity counters *)
  mutable tcu_busy_cycles : int;
  mutable tcu_memwait_cycles : int;
  mutable tcu_fuwait_cycles : int;
  mutable tcu_pswait_cycles : int;
  mutable icn_packets : int;
  mutable icn_occupancy : int;  (** sum of in-flight packets per cycle *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rocache_hits : int;
  mutable rocache_misses : int;
  mutable master_cache_hits : int;
  mutable master_cache_misses : int;
  mutable dram_reads : int;
  mutable prefetch_hits : int;
  mutable prefetch_misses : int;  (** loads that found no buffered value *)
  mutable prefetch_late : int;
      (** loads that attached to a still-in-flight prefetch *)
  mutable prefetch_issued : int;
  mutable prefetch_evicted : int;
  mutable ps_ops : int;
  mutable psm_ops : int;
  mutable spawns : int;
  mutable virtual_threads : int;
  mutable nb_stores : int;
  mutable fences : int;
  mutable req_lat : req_latency option;
      (** per-(cluster, module) request-lifecycle latency histograms; the
          machine installs one sized to its configuration at creation *)
}

let fu_index c =
  let rec go i = function
    | [] -> invalid_arg "fu_index"
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 Isa.Instr.all_fu_classes

let create () =
  {
    cycles = 0;
    instr_by_class = Array.make (List.length Isa.Instr.all_fu_classes) 0;
    master_instrs = 0;
    tcu_instrs = 0;
    tcu_busy_cycles = 0;
    tcu_memwait_cycles = 0;
    tcu_fuwait_cycles = 0;
    tcu_pswait_cycles = 0;
    icn_packets = 0;
    icn_occupancy = 0;
    cache_hits = 0;
    cache_misses = 0;
    rocache_hits = 0;
    rocache_misses = 0;
    master_cache_hits = 0;
    master_cache_misses = 0;
    dram_reads = 0;
    prefetch_hits = 0;
    prefetch_misses = 0;
    prefetch_late = 0;
    prefetch_issued = 0;
    prefetch_evicted = 0;
    ps_ops = 0;
    psm_ops = 0;
    spawns = 0;
    virtual_threads = 0;
    nb_stores = 0;
    fences = 0;
    req_lat = None;
  }

(** Deep copy — checkpoint payload. *)
let copy t =
  {
    t with
    instr_by_class = Array.copy t.instr_by_class;
    req_lat = Option.map copy_req_latency t.req_lat;
  }

(** Overwrite [dst] in place with [src]'s counters (restore path: the
    machine and any attached plug-in keep their reference to the same
    record, so the copy must happen field-by-field, not by swapping the
    record). *)
let blit ~src ~dst =
  Array.blit src.instr_by_class 0 dst.instr_by_class 0
    (Array.length src.instr_by_class);
  dst.cycles <- src.cycles;
  dst.master_instrs <- src.master_instrs;
  dst.tcu_instrs <- src.tcu_instrs;
  dst.tcu_busy_cycles <- src.tcu_busy_cycles;
  dst.tcu_memwait_cycles <- src.tcu_memwait_cycles;
  dst.tcu_fuwait_cycles <- src.tcu_fuwait_cycles;
  dst.tcu_pswait_cycles <- src.tcu_pswait_cycles;
  dst.icn_packets <- src.icn_packets;
  dst.icn_occupancy <- src.icn_occupancy;
  dst.cache_hits <- src.cache_hits;
  dst.cache_misses <- src.cache_misses;
  dst.rocache_hits <- src.rocache_hits;
  dst.rocache_misses <- src.rocache_misses;
  dst.master_cache_hits <- src.master_cache_hits;
  dst.master_cache_misses <- src.master_cache_misses;
  dst.dram_reads <- src.dram_reads;
  dst.prefetch_hits <- src.prefetch_hits;
  dst.prefetch_misses <- src.prefetch_misses;
  dst.prefetch_late <- src.prefetch_late;
  dst.prefetch_issued <- src.prefetch_issued;
  dst.prefetch_evicted <- src.prefetch_evicted;
  dst.ps_ops <- src.ps_ops;
  dst.psm_ops <- src.psm_ops;
  dst.spawns <- src.spawns;
  dst.virtual_threads <- src.virtual_threads;
  dst.nb_stores <- src.nb_stores;
  dst.fences <- src.fences;
  dst.req_lat <- Option.map copy_req_latency src.req_lat

let count_instr t ~master ins =
  t.instr_by_class.(fu_index (Isa.Instr.fu_class_of ins)) <-
    t.instr_by_class.(fu_index (Isa.Instr.fu_class_of ins)) + 1;
  if master then t.master_instrs <- t.master_instrs + 1
  else t.tcu_instrs <- t.tcu_instrs + 1

let total_instrs t = t.master_instrs + t.tcu_instrs

let by_class t =
  List.mapi
    (fun i c -> (Isa.Instr.fu_class_name c, t.instr_by_class.(i)))
    Isa.Instr.all_fu_classes

(** Export every counter into a metrics registry (call once per fresh
    registry; counters accumulate).  Metric names follow the [sim.*]
    convention documented in the README's Observability section. *)
let rec export t (reg : Obs.Metrics.t) =
  let c ?labels name v = Obs.Metrics.inc ~by:v (Obs.Metrics.counter reg ?labels name) in
  let g ?labels name v = Obs.Metrics.set (Obs.Metrics.gauge reg ?labels name) v in
  c "sim.cycles" t.cycles;
  c ~labels:[ ("unit", "master") ] "sim.instructions" t.master_instrs;
  c ~labels:[ ("unit", "tcu") ] "sim.instructions" t.tcu_instrs;
  List.iter
    (fun (cls, v) -> c ~labels:[ ("class", cls) ] "sim.instructions_by_class" v)
    (by_class t);
  c "sim.spawns" t.spawns;
  c "sim.virtual_threads" t.virtual_threads;
  c "sim.tcu.busy_cycles" t.tcu_busy_cycles;
  c "sim.tcu.memwait_cycles" t.tcu_memwait_cycles;
  c "sim.tcu.fuwait_cycles" t.tcu_fuwait_cycles;
  c "sim.tcu.pswait_cycles" t.tcu_pswait_cycles;
  c "sim.icn.packets" t.icn_packets;
  c "sim.icn.occupancy" t.icn_occupancy;
  let cache name hits misses =
    c ~labels:[ ("cache", name); ("outcome", "hit") ] "sim.cache.accesses" hits;
    c ~labels:[ ("cache", name); ("outcome", "miss") ] "sim.cache.accesses" misses;
    let total = hits + misses in
    g ~labels:[ ("cache", name) ] "sim.cache.hit_rate"
      (if total = 0 then 0.0 else float_of_int hits /. float_of_int total)
  in
  cache "shared" t.cache_hits t.cache_misses;
  cache "ro" t.rocache_hits t.rocache_misses;
  cache "master" t.master_cache_hits t.master_cache_misses;
  c "sim.dram.reads" t.dram_reads;
  c "sim.prefetch.issued" t.prefetch_issued;
  c "sim.prefetch.hits" t.prefetch_hits;
  c "sim.prefetch.misses" t.prefetch_misses;
  c "sim.prefetch.late" t.prefetch_late;
  c "sim.prefetch.evicted" t.prefetch_evicted;
  c "sim.ps_ops" t.ps_ops;
  c "sim.psm_ops" t.psm_ops;
  c "sim.nb_stores" t.nb_stores;
  c "sim.fences" t.fences;
  export_req_lat t reg

(* Memory-request lifecycle latencies as registry histograms:
   [sim.mem.request_latency{stage, cluster, module}] for every populated
   (cluster, module) pair plus a per-stage aggregate with only the
   [stage] label.  Percentiles come out in the JSON export for free. *)
and export_req_lat t reg =
  match t.req_lat with
  | None -> ()
  | Some rl ->
    let buckets = Array.to_list (Array.map float_of_int lat_bounds) in
    let help = "memory-request latency in cycles, by lifecycle stage" in
    let add (src : lat_hist) labels =
      let dst =
        Obs.Metrics.histogram reg ~help ~labels ~buckets "sim.mem.request_latency"
      in
      Array.iteri
        (fun i n ->
          dst.Obs.Metrics.h_counts.(i) <- dst.Obs.Metrics.h_counts.(i) + n)
        src.lh_counts;
      dst.Obs.Metrics.h_sum <- dst.Obs.Metrics.h_sum +. float_of_int src.lh_sum;
      dst.Obs.Metrics.h_count <- dst.Obs.Metrics.h_count + src.lh_count;
      let mn = float_of_int src.lh_min and mx = float_of_int src.lh_max in
      if mn < dst.Obs.Metrics.h_min then dst.Obs.Metrics.h_min <- mn;
      if mx > dst.Obs.Metrics.h_max then dst.Obs.Metrics.h_max <- mx
    in
    List.iter
      (fun stage ->
        let name = lat_stage_name stage in
        let hists = lat_stage_hists rl stage in
        Array.iteri
          (fun idx h ->
            if h.lh_count > 0 then begin
              let cl = idx / rl.rl_modules and m = idx mod rl.rl_modules in
              add h
                [ ("stage", name); ("cluster", string_of_int cl);
                  ("module", string_of_int m) ];
              add h [ ("stage", name) ]
            end)
          hists)
      all_lat_stages

let to_string t =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cycles:            %d\n" t.cycles;
  pf "instructions:      %d (master %d, TCU %d)\n" (total_instrs t)
    t.master_instrs t.tcu_instrs;
  List.iter (fun (n, c) -> if c > 0 then pf "  %-4s             %d\n" n c) (by_class t);
  pf "spawns:            %d (virtual threads %d)\n" t.spawns t.virtual_threads;
  pf "TCU busy cycles:   %d\n" t.tcu_busy_cycles;
  pf "TCU mem-wait:      %d  fu-wait: %d  ps-wait: %d\n" t.tcu_memwait_cycles
    t.tcu_fuwait_cycles t.tcu_pswait_cycles;
  pf "ICN packets:       %d\n" t.icn_packets;
  pf "cache hits/misses: %d/%d\n" t.cache_hits t.cache_misses;
  pf "master cache h/m:  %d/%d\n" t.master_cache_hits t.master_cache_misses;
  pf "ro-cache h/m:      %d/%d\n" t.rocache_hits t.rocache_misses;
  pf "DRAM reads:        %d\n" t.dram_reads;
  pf "prefetch issued/hit/late/evicted: %d/%d/%d/%d\n" t.prefetch_issued
    t.prefetch_hits t.prefetch_late t.prefetch_evicted;
  pf "ps/psm ops:        %d/%d\n" t.ps_ops t.psm_ops;
  pf "nb stores:         %d  fences: %d\n" t.nb_stores t.fences;
  (match t.req_lat with
  | None -> ()
  | Some rl ->
    let sum, cnt =
      Array.fold_left
        (fun (s, c) h -> (s + h.lh_sum, c + h.lh_count))
        (0, 0) rl.rl_total
    in
    if cnt > 0 then
      pf "mem round-trip:    %d requests, mean %.1f cycles\n" cnt
        (float_of_int sum /. float_of_int cnt));
  Buffer.contents b
