type params = {
  ambient : float;
  c_cluster : float;
  c_other : float;
  r_vertical : float;
  r_lateral : float;
}

let default =
  {
    ambient = 318.0;
    c_cluster = 0.002;
    c_other = 0.01;
    r_vertical = 2.0;
    r_lateral = 8.0;
  }

let demo =
  {
    ambient = 318.0;
    c_cluster = 2e-6;
    c_other = 1e-5;
    r_vertical = 8.0;
    r_lateral = 20.0;
  }

type t = {
  p : params;
  names : string array;
  grid_w : int;
  grid_n : int;  (* number of grid (cluster) nodes *)
  temps : float array;
  caps : float array;
}

let create ?(params = default) ~grid_w names =
  let n = Array.length names in
  (* cluster nodes are those named cluster*; they come first *)
  let grid_n =
    let rec count i =
      if i < n && String.length names.(i) >= 7 && String.sub names.(i) 0 7 = "cluster"
      then count (i + 1)
      else i
    in
    count 0
  in
  {
    p = params;
    names;
    grid_w = max 1 grid_w;
    grid_n;
    temps = Array.make n params.ambient;
    caps =
      Array.init n (fun i -> if i < grid_n then params.c_cluster else params.c_other);
  }

let neighbours t i =
  if i < t.grid_n then begin
    let x = i mod t.grid_w and y = i / t.grid_w in
    let cand = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
    List.filter_map
      (fun (cx, cy) ->
        let j = (cy * t.grid_w) + cx in
        if cx >= 0 && cx < t.grid_w && j >= 0 && j < t.grid_n then Some j else None)
      cand
  end
  else
    (* chip-spanning components couple to all grid nodes *)
    List.init t.grid_n (fun j -> j)

let step t ~dt p =
  let n = Array.length t.temps in
  (* forward Euler is only stable for dt well below the smallest RC time
     constant; substep long windows so any parameterization integrates
     robustly *)
  let cmin = Array.fold_left min infinity t.caps in
  let tau = t.p.r_vertical *. cmin in
  let nsub = max 1 (min 1000 (int_of_float (ceil (dt /. (0.2 *. tau))))) in
  let h = dt /. float_of_int nsub in
  let dtemp = Array.make n 0.0 in
  for _ = 1 to nsub do
    for i = 0 to n - 1 do
      let ti = t.temps.(i) in
      let flow_sink = (ti -. t.p.ambient) /. t.p.r_vertical in
      let flow_lat =
        List.fold_left
          (fun acc j -> acc +. ((ti -. t.temps.(j)) /. t.p.r_lateral))
          0.0 (neighbours t i)
      in
      dtemp.(i) <- h *. (p.(i) -. flow_sink -. flow_lat) /. t.caps.(i)
    done;
    for i = 0 to n - 1 do
      t.temps.(i) <- t.temps.(i) +. dtemp.(i)
    done
  done

let temperatures t = t.temps
let max_temperature t = Array.fold_left max neg_infinity t.temps
let component_names t = t.names

(** Export the current temperature field into a metrics registry:
    per-component kelvin (labelled) plus the hotspot. *)
let export t reg =
  Array.iteri
    (fun i temp ->
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~labels:[ ("component", t.names.(i)) ] "sim.thermal.temp_k")
        temp)
    t.temps;
  Obs.Metrics.set (Obs.Metrics.gauge reg "sim.thermal.max_temp_k") (max_temperature t)
