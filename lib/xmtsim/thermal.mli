(** Lumped-RC thermal model — the HotSpot substitute (paper §III-F).

    Each floorplan component is a thermal node with a heat capacity, a
    resistance to the heat sink (ambient) and lateral resistances to its
    floorplan neighbours.  Per sample, the power vector from {!Power} is
    integrated with forward Euler:

    [C dT/dt = P - (T - Tamb)/Rv - sum_j (T - Tj)/Rl]

    The paper computed power from activity counters and passed it to
    HotSpot via JNI for temperature estimation; this model plays the same
    role natively, enabling the dynamic thermal-management experiments
    (the activity plug-in can read temperatures and throttle clock
    domains). *)

type params = {
  ambient : float;  (** K *)
  c_cluster : float;  (** J/K *)
  c_other : float;
  r_vertical : float;  (** K/W to heat sink *)
  r_lateral : float;  (** K/W between floorplan neighbours *)
}

val default : params

(** Parameters scaled so thermal dynamics are visible within the tens of
    microseconds a typical simulated kernel lasts (demo/benchmark use);
    physical chips have millisecond time constants, which would need
    billions of simulated cycles to show any temperature movement. *)
val demo : params

type t

(** [create ~params ~grid_w names] — the first [grid_w*grid_h] components
    (the clusters) form a 2-D floorplan grid; remaining components couple
    laterally to every grid node (ICN, caches span the chip). *)
val create : ?params:params -> grid_w:int -> string array -> t

(** Integrate one window of [dt] seconds under component powers [p]. *)
val step : t -> dt:float -> float array -> unit

val temperatures : t -> float array
val max_temperature : t -> float
val component_names : t -> string array

(** Export the temperature field into a metrics registry:
    [sim.thermal.temp_k{component=...}] gauges plus [sim.thermal.max_temp_k]. *)
val export : t -> Obs.Metrics.t -> unit
