(** Execution traces (paper §III-E): functional-level traces show the
    executed instructions; filters restrict to specific TCUs and/or
    instruction classes.  Attach with {!attach}; lines go to the given
    sink (e.g. [Buffer.add_string buf] or [print_string]).

    When [filter.limit] is reached the hook detaches itself from the
    machine, so a bounded trace costs nothing for the rest of a long
    run. *)

type filter = {
  tcus : int list option;  (** [None] = all; Master TCU is -1 *)
  classes : Isa.Instr.fu_class list option;
  limit : int;  (** stop recording after this many lines; <=0 = unlimited *)
}

let all = { tcus = None; classes = None; limit = 0 }

let attach ?(filter = all) machine sink =
  let count = ref 0 in
  let detach = ref (fun () -> ()) in
  detach :=
    Machine.add_instr_hook machine (fun ~tcu ~pc ins ~time ->
        let keep =
          (match filter.tcus with None -> true | Some l -> List.mem tcu l)
          && (match filter.classes with
             | None -> true
             | Some l -> List.mem (Isa.Instr.fu_class_of ins) l)
        in
        if keep then begin
          incr count;
          let who = if tcu < 0 then "MTCU" else Printf.sprintf "TCU%-4d" tcu in
          sink
            (Printf.sprintf "%8d %s pc=%-5d %s\n" time who pc (Isa.Instr.to_string ins));
          if filter.limit > 0 && !count >= filter.limit then !detach ()
        end)

(** Attach the cycle-accurate (package-level) trace: one line per station
    an instruction/data package travels through (§III-E).  [addr] limits
    the trace to packages touching that address. *)
let attach_packages ?addr ?(limit = 0) machine sink =
  let count = ref 0 in
  let detach = ref (fun () -> ()) in
  detach :=
    Machine.add_package_hook machine (fun ev ->
        let keep =
          match addr with
          | Some a -> ev.Machine.pe_addr = a || ev.Machine.pe_stage = "dram-fill"
          | None -> true
        in
        if keep then begin
          incr count;
          sink
            (Printf.sprintf
               "%8d %-13s %-9s addr=0x%-6x tcu=%-4d pc=%-5d module=%d\n"
               ev.Machine.pe_time ev.Machine.pe_stage ev.Machine.pe_kind
               ev.Machine.pe_addr ev.Machine.pe_tcu ev.Machine.pe_pc
               ev.Machine.pe_module);
          if limit > 0 && !count >= limit then !detach ()
        end)
