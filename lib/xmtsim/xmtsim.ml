(** XMTSim — the cycle-accurate simulator of the XMT architecture
    (paper §III), built on the {!Desim} discrete-event engine.

    {!Machine} is the cycle-accurate model (Fig. 1 components:
    TCUs/clusters with shared MDU/FPU, prefetch buffers, read-only caches,
    the interconnection network, hashed shared cache modules, DRAM, the
    global prefix-sum unit and the spawn-join mechanism), driven by the
    execution-driven {!Funcmodel}.  {!Functional_mode} is the fast
    serializing mode.  {!Stats}, {!Plugin} and {!Trace} provide the
    counters, filter/activity plug-ins and traces of §III-B/E; {!Power},
    {!Thermal} and {!Floorplan} the §III-F power/temperature stack;
    {!Machine.checkpoint} the §III-E checkpoints. *)

module Config = Config
module Mem = Mem
module Funcmodel = Funcmodel
module Stats = Stats
module Tags = Tags
module Prefetch_buffer = Prefetch_buffer
module Plugin = Plugin
module Racedetect = Racedetect
module Profile = Profile
module Profiler = Profiler
module Machine = Machine
module Functional_mode = Functional_mode
module Reuseprofile = Reuseprofile
module Phase_sampling = Phase_sampling
module Trace = Trace
module Power = Power
module Thermal = Thermal
module Floorplan = Floorplan
module Governor = Governor
