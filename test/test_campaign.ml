(** Campaign engine: parallel-vs-serial determinism, fault isolation,
    retry accounting, the job-oriented Toolchain API and the validated
    Config constructors it rides on. *)

module C = Xmtsim.Config
module T = Core.Toolchain

let tiny_job ?mode ?seed n =
  let name = Printf.sprintf "vecadd-%d" n in
  (name, T.job ~name ?mode ?seed ~config:C.tiny (Core.Kernels.vecadd ~n))

(* ---- determinism: serial and 2-domain runs are byte-identical ---- *)

let det_specs () =
  (* 9 jobs over distinct sizes/seeds/modes: enough to interleave *)
  List.concat
    [
      List.map (fun n -> tiny_job n) [ 16; 24; 32; 48 ];
      List.map (fun n -> tiny_job ~seed:(n * 7) n) [ 20; 28 ];
      List.map (fun n -> tiny_job ~mode:T.Functional n) [ 16; 40 ];
      [ tiny_job 64 ];
    ]

let report rs = Obs.Json.to_string (Campaign.report_to_json ~host:false rs)

let parallel_matches_serial () =
  let specs = det_specs () in
  let serial = Campaign.run ~jobs:1 specs in
  let parallel = Campaign.run ~jobs:2 specs in
  Tu.check_int "all ok (serial)" (List.length specs) (Campaign.ok_count serial);
  Tu.check_int "all ok (parallel)" (List.length specs)
    (Campaign.ok_count parallel);
  Tu.check_string "reports byte-identical" (report serial) (report parallel)

let order_is_submission_order () =
  let specs = det_specs () in
  let rs = Campaign.run ~jobs:3 specs in
  List.iteri
    (fun i (name, _) ->
      Tu.check_int "index" i rs.(i).Campaign.r_index;
      Tu.check_string "name" name rs.(i).Campaign.r_name)
    specs

(* ---- warm pool, work stealing, shared artifacts ---- *)

(* hundreds of tiny jobs over a handful of distinct sources: lots of
   stealing, few distinct compile keys *)
let stress_specs n =
  List.init n (fun i ->
      let size = 16 + (i mod 4) * 8 in
      let mode = if i mod 5 = 0 then T.Functional else T.Cycle in
      let name = Printf.sprintf "s%03d" i in
      ( name,
        T.job ~name ~mode ~seed:i ~config:C.tiny (Core.Kernels.vecadd ~n:size)
      ))

let stress_stealing_deterministic () =
  let specs = stress_specs 120 in
  let reference = report (Campaign.run ~jobs:1 specs) in
  (* worker counts 1, 2, N and far more workers than jobs (the clamp) *)
  List.iter
    (fun w ->
      Tu.check_string
        (Printf.sprintf "workers=%d matches serial" w)
        reference
        (report (Campaign.run ~jobs:w specs)))
    [ 2; 4; 300 ]

let pool_reused_across_runs () =
  let artifacts = Core.Toolchain.Artifacts.create () in
  Campaign.Pool.with_pool ~workers:3 (fun pool ->
      let a = Campaign.run ~pool ~artifacts (stress_specs 40) in
      let b = Campaign.run ~pool ~artifacts (stress_specs 40) in
      Tu.check_int "first run all ok" 40 (Campaign.ok_count a);
      Tu.check_string "re-run on the warm pool identical" (report a) (report b);
      Array.iter
        (fun r ->
          Tu.check_bool "monotonic wall time" true
            (r.Campaign.r_wall_seconds >= 0.0))
        b;
      let hits, compiles = Core.Toolchain.Artifacts.stats artifacts in
      Tu.check_bool "artifacts reused across jobs and runs" true (hits > 0);
      Tu.check_bool "compiles bounded by distinct keys" true (compiles <= 8);
      (* a different job list through the same warm pool *)
      let c = Campaign.run ~pool ~jobs:2 (det_specs ()) in
      Tu.check_int "third run ok" (List.length (det_specs ()))
        (Campaign.ok_count c))

let poisoned_jobs_under_stealing () =
  let specs =
    List.map
      (fun ((name, _) as spec) ->
        let i = int_of_string (String.sub name 1 3) in
        if i mod 13 = 6 then
          (name, T.job ~name ~config:C.tiny "int main() { return broken; }")
        else spec)
      (stress_specs 60)
  in
  let rs = Campaign.run ~jobs:4 specs in
  Tu.check_int "exactly the poisoned jobs fail" 5 (Campaign.failed_count rs);
  Array.iteri
    (fun i r ->
      match r.Campaign.r_outcome with
      | Ok _ ->
        Tu.check_bool "good job succeeded" true (i mod 13 <> 6)
      | Error f ->
        Tu.check_bool "bad job failed" true (i mod 13 = 6);
        Tu.check_bool "error captured" true (f.Campaign.f_exn <> ""))
    rs

let workers_clamped_to_jobs () =
  (* ~jobs:8 with 2 jobs must run on 2 workers; the campaign.start
     stream record reports the clamped width *)
  let buf = Buffer.create 512 in
  let s = Obs.Stream.create (Obs.Stream.buffer_sink buf) in
  let rs =
    Campaign.run ~jobs:8 ~stream:s [ tiny_job 16; tiny_job 24 ]
  in
  Obs.Stream.close s;
  Tu.check_int "both jobs ok" 2 (Campaign.ok_count rs);
  let workers =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           if String.trim l = "" then None
           else
             let j = Obs.Json.of_string l in
             match Obs.Json.member "type" j with
             | Some (Obs.Json.Str "campaign.start") ->
               Option.bind (Obs.Json.member "workers" j) Obs.Json.to_int
             | _ -> None)
    |> List.hd
  in
  Tu.check_int "clamped to job count" 2 workers

(* ---- the pool itself ---- *)

let pool_runs_each_index_once () =
  Campaign.Pool.with_pool ~workers:4 (fun pool ->
      let hits = Array.make 500 0 in
      (* each slot is written by exactly one worker *)
      Campaign.Pool.run pool ~jobs:500 (fun ~worker:_ i ->
          hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h -> if h <> 1 then Alcotest.failf "index %d ran %d times" i h)
        hits)

let pool_propagates_failure () =
  Campaign.Pool.with_pool ~workers:2 (fun pool ->
      match
        Campaign.Pool.run pool ~jobs:10 (fun ~worker:_ i ->
            if i = 7 then failwith "boom7")
      with
      | () -> Alcotest.fail "expected the worker failure to surface"
      | exception Failure m -> Tu.check_string "failure text" "boom7" m);
  (* the campaign engine, by contrast, isolates job failures *)
  ()

let pool_shutdown_idempotent () =
  let pool = Campaign.Pool.create ~workers:3 () in
  Campaign.Pool.run pool ~jobs:8 (fun ~worker:_ _ -> ());
  Campaign.Pool.shutdown pool;
  (* repeat calls are no-ops, not errors *)
  Campaign.Pool.shutdown pool;
  Campaign.Pool.shutdown pool;
  match Campaign.Pool.run pool ~jobs:4 (fun ~worker:_ _ -> ()) with
  | () -> Alcotest.fail "run on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

let pool_shutdown_concurrent () =
  (* several threads race shutdown; every call must return only after
     the helpers are joined, and none may error *)
  let pool = Campaign.Pool.create ~workers:4 () in
  let errors = Atomic.make 0 in
  let ts =
    List.init 6 (fun _ ->
        Thread.create
          (fun () ->
            try Campaign.Pool.shutdown pool
            with _ -> Atomic.incr errors)
          ())
  in
  List.iter Thread.join ts;
  Tu.check_int "no shutdown call raised" 0 (Atomic.get errors);
  match Campaign.Pool.run pool ~jobs:2 (fun ~worker:_ _ -> ()) with
  | () -> Alcotest.fail "run on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

(* ---- fault isolation ---- *)

let failures_are_isolated () =
  let good n = tiny_job n in
  let specs =
    [
      good 16;
      (* compile error: undeclared identifier *)
      ("bad-source", T.job ~name:"bad-source" ~config:C.tiny "int main() { return undeclared_thing; }");
      good 24;
      (* cycle budget exhausted mid-simulation *)
      ( "starved",
        T.job ~name:"starved" ~config:C.tiny ~max_cycles:10
          (Core.Kernels.vecadd ~n:64) );
      good 32;
    ]
  in
  let rs = Campaign.run ~jobs:2 specs in
  Tu.check_int "ok count" 3 (Campaign.ok_count rs);
  Tu.check_int "failed count" 2 (Campaign.failed_count rs);
  (match rs.(1).Campaign.r_outcome with
  | Error f -> Tu.check_bool "error text nonempty" true (f.Campaign.f_exn <> "")
  | Ok _ -> Alcotest.fail "bad-source unexpectedly succeeded");
  (match rs.(3).Campaign.r_outcome with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "starved job unexpectedly succeeded");
  (* neighbours of the failures are intact *)
  List.iter
    (fun i ->
      match rs.(i).Campaign.r_outcome with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "job %d poisoned: %s" i f.Campaign.f_exn)
    [ 0; 2; 4 ]

let failed_jobs_are_retried () =
  let specs =
    [
      ("boom", T.job ~name:"boom" ~config:C.tiny "not even c");
      tiny_job 16;
    ]
  in
  let rs = Campaign.run ~jobs:1 ~retries:2 specs in
  Tu.check_int "failed attempts = 1 + retries" 3 rs.(0).Campaign.r_attempts;
  Tu.check_int "success takes one attempt" 1 rs.(1).Campaign.r_attempts

let events_cover_every_job () =
  let started = ref 0 and finished = ref 0 and failed = ref 0 in
  let on_event = function
    | Campaign.Job_started _ -> incr started
    | Campaign.Job_finished _ -> incr finished
    | Campaign.Job_failed _ -> incr failed
  in
  let specs =
    [ tiny_job 16; ("bad", T.job ~name:"bad" ~config:C.tiny "}{"); tiny_job 24 ]
  in
  let reg = Obs.Metrics.create () in
  let rs = Campaign.run ~jobs:2 ~on_event ~metrics:reg specs in
  Tu.check_int "started events" 3 !started;
  Tu.check_int "finished events" 2 !finished;
  Tu.check_int "failed events" 1 !failed;
  Tu.check_int "ok" 2 (Campaign.ok_count rs);
  Tu.check_bool "wall gauge set" true
    (Option.value ~default:0.0
       (Obs.Metrics.gauge_value reg "campaign.wall_seconds")
    > 0.0)

(* ---- the job-oriented Toolchain API ---- *)

let run_job_matches_wrappers () =
  let src = Core.Kernels.vecadd ~n:32 in
  let via_job =
    T.run_job (T.job ~name:"j" ~config:C.tiny src)
  in
  let via_exec = T.exec ~config:C.tiny src in
  Tu.check_string "output" via_exec.T.output via_job.T.output;
  Tu.check_int "cycles" via_exec.T.cycles via_job.T.cycles;
  let f_job = T.run_job (T.job ~mode:T.Functional src) in
  let f_exec = T.exec ~functional:true src in
  Tu.check_string "functional output" f_exec.T.output f_job.T.output

let job_seed_overrides_config () =
  let j = T.job ~config:C.tiny ~seed:12345 (Core.Kernels.vecadd ~n:16) in
  Tu.check_int "seed folded into config" 12345 (T.job_config j).C.seed

(* ---- validated Config constructors ---- *)

let bad_configs_are_rejected () =
  let rejects name f =
    match f () with
    | exception C.Bad_config _ -> ()
    | _ -> Alcotest.failf "%s: Bad_config expected" name
  in
  rejects "override num_clusters=0" (fun () ->
      C.with_overrides C.tiny [ "num_clusters=0" ]);
  rejects "make dram_latency=-1" (fun () -> C.make ~dram_latency:(-1) ());
  rejects "make num_cache_modules=0" (fun () -> C.make ~num_cache_modules:0 ());
  rejects "with_topology tcus=0" (fun () ->
      C.with_topology C.tiny ~num_clusters:2 ~tcus_per_cluster:0)

let validate_lists_problems () =
  match C.validate { C.tiny with C.num_clusters = 0; C.dram_latency = -5 } with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error msg ->
    let has sub =
      let n = String.length msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
      go 0
    in
    Tu.check_bool "mentions num_clusters" true (has "num_clusters");
    Tu.check_bool "mentions dram_latency" true (has "dram_latency")

let make_builds_valid_machines () =
  let c = C.make ~name:"custom" ~num_clusters:2 ~tcus_per_cluster:4 ~seed:9 () in
  Tu.check_string "name" "custom" c.C.name;
  Tu.check_int "tcus" 8 (C.num_tcus c);
  Tu.check_int "seed" 9 c.C.seed;
  (* base defaults come from fpga64 *)
  Tu.check_int "inherited dram_latency" C.fpga64.C.dram_latency c.C.dram_latency

(* ---- campaign spec files ---- *)

let spec_parsing () =
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "xmt.campaign.v1");
        ( "defaults",
          Obs.Json.Obj
            [ ("preset", Obs.Json.Str "tiny"); ("seed", Obs.Json.Int 7) ] );
        ( "jobs",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "a");
                  ("inline", Obs.Json.Str (Core.Kernels.vecadd ~n:16));
                ];
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "b");
                  ("inline", Obs.Json.Str (Core.Kernels.vecadd ~n:24));
                  ("mode", Obs.Json.Str "functional");
                  ("seed", Obs.Json.Int 3);
                  ("set", Obs.Json.List [ Obs.Json.Str "dram_latency=9" ]);
                ];
            ] );
      ]
  in
  let specs = Campaign.jobs_of_json json in
  Tu.check_int "two jobs" 2 (List.length specs);
  let _, a = List.nth specs 0 and _, b = List.nth specs 1 in
  Tu.check_string "preset default applies" "tiny" (T.job_config a).C.name;
  Tu.check_int "default seed" 7 (T.job_config a).C.seed;
  Tu.check_string "mode" "functional" (T.mode_name b.T.mode);
  let rs = Campaign.run ~jobs:2 specs in
  Tu.check_int "spec campaign runs" 2 (Campaign.ok_count rs)

let spec_errors () =
  let rejects json =
    match Campaign.jobs_of_json json with
    | exception Campaign.Spec_error _ -> ()
    | _ -> Alcotest.fail "Spec_error expected"
  in
  rejects (Obs.Json.Obj [ ("schema", Obs.Json.Str "nope") ]);
  rejects
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.Str "xmt.campaign.v1");
         ("jobs", Obs.Json.List [ Obs.Json.Obj [ ("name", Obs.Json.Str "x") ] ]);
       ])

(* ---- the first-class request API ---- *)

let request_builders () =
  let specs = [ tiny_job 16; tiny_job 24 ] in
  let r = Campaign.Request.make specs in
  Tu.check_int "default retries" 0 r.Campaign.Request.retries;
  Tu.check_bool "default jobs = pool width" true
    (r.Campaign.Request.jobs = None);
  let r = Campaign.Request.with_jobs r (Some 2) in
  let r = Campaign.Request.with_retries r 3 in
  let r = Campaign.Request.with_progress_interval r 0.5 in
  Tu.check_bool "with_jobs" true (r.Campaign.Request.jobs = Some 2);
  Tu.check_int "with_retries" 3 r.Campaign.Request.retries;
  let rs = Campaign.run_request r in
  Tu.check_int "request runs" 2 (Campaign.ok_count rs);
  (* run is a thin wrapper over run_request: same report *)
  Tu.check_string "run == run_request" (report rs)
    (report (Campaign.run ~jobs:2 ~retries:3 specs))

let request_validation () =
  let specs = [ tiny_job 16 ] in
  let rejects f =
    match f () with
    | exception Campaign.Spec_error _ -> ()
    | (_ : Campaign.Request.t) -> Alcotest.fail "Spec_error expected"
  in
  rejects (fun () -> Campaign.Request.make ~jobs:0 specs);
  rejects (fun () -> Campaign.Request.make ~retries:(-1) specs);
  rejects (fun () -> Campaign.Request.make ~progress_interval:(-1.0) specs);
  rejects (fun () -> Campaign.Request.make ~progress_interval:Float.nan specs);
  rejects (fun () ->
      Campaign.Request.with_jobs (Campaign.Request.make specs) (Some (-4)));
  (match Campaign.Request.validate (Campaign.Request.make specs) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "valid request rejected: %s" m);
  match
    Campaign.Request.validate (Campaign.Request.make ~jobs:4 ~retries:1 specs)
  with
  | Ok r -> Tu.check_bool "jobs kept" true (r.Campaign.Request.jobs = Some 4)
  | Error m -> Alcotest.failf "valid request rejected: %s" m

let request_of_json_exec () =
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "xmt.campaign.v1");
        ( "exec",
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Int 2);
              ("retries", Obs.Json.Int 1);
              ("progress_interval", Obs.Json.Float 0.25);
            ] );
        ("defaults", Obs.Json.Obj [ ("preset", Obs.Json.Str "tiny") ]);
        ( "jobs",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "a");
                  ("inline", Obs.Json.Str (Core.Kernels.vecadd ~n:16));
                ];
            ] );
      ]
  in
  let r = Campaign.Request.of_json json in
  Tu.check_bool "exec jobs" true (r.Campaign.Request.jobs = Some 2);
  Tu.check_int "exec retries" 1 r.Campaign.Request.retries;
  Tu.check_bool "exec progress_interval" true
    (r.Campaign.Request.progress_interval = 0.25);
  Tu.check_int "specs parsed" 1 (List.length r.Campaign.Request.specs);
  (* exec is optional; bad exec values are Spec_errors *)
  let no_exec =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "xmt.campaign.v1");
        ( "jobs",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "a");
                  ("preset", Obs.Json.Str "tiny");
                  ("inline", Obs.Json.Str (Core.Kernels.vecadd ~n:16));
                ];
            ] );
      ]
  in
  Tu.check_bool "no exec = defaults" true
    ((Campaign.Request.of_json no_exec).Campaign.Request.jobs = None);
  match
    Campaign.Request.of_json
      (Obs.Json.Obj
         [
           ("schema", Obs.Json.Str "xmt.campaign.v1");
           ("exec", Obs.Json.Obj [ ("jobs", Obs.Json.Int 0) ]);
           ( "jobs",
             Obs.Json.List
               [
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str "a");
                     ("preset", Obs.Json.Str "tiny");
                     ("inline", Obs.Json.Str (Core.Kernels.vecadd ~n:16));
                   ];
               ] );
         ])
  with
  | exception Campaign.Spec_error _ -> ()
  | _ -> Alcotest.fail "exec jobs=0 must be a Spec_error"

let () =
  Alcotest.run "campaign"
    [
      ( "determinism",
        [
          Tu.tc "parallel report matches serial" parallel_matches_serial;
          Tu.tc "submission order preserved" order_is_submission_order;
        ] );
      ( "warm pool",
        [
          Tu.tc "stealing deterministic (1/2/4/300 workers)"
            stress_stealing_deterministic;
          Tu.tc "pool + artifacts reused across runs" pool_reused_across_runs;
          Tu.tc "poisoned jobs isolated under stealing"
            poisoned_jobs_under_stealing;
          Tu.tc "workers clamped to job count" workers_clamped_to_jobs;
          Tu.tc "pool runs each index once" pool_runs_each_index_once;
          Tu.tc "pool propagates worker failure" pool_propagates_failure;
          Tu.tc "pool shutdown idempotent" pool_shutdown_idempotent;
          Tu.tc "pool shutdown concurrent-safe" pool_shutdown_concurrent;
        ] );
      ( "fault isolation",
        [
          Tu.tc "failures isolated" failures_are_isolated;
          Tu.tc "retry accounting" failed_jobs_are_retried;
          Tu.tc "events and metrics" events_cover_every_job;
        ] );
      ( "job api",
        [
          Tu.tc "run_job matches wrappers" run_job_matches_wrappers;
          Tu.tc "job seed overrides config" job_seed_overrides_config;
        ] );
      ( "config validation",
        [
          Tu.tc "bad configs rejected" bad_configs_are_rejected;
          Tu.tc "validate lists problems" validate_lists_problems;
          Tu.tc "make builds valid machines" make_builds_valid_machines;
        ] );
      ( "spec files",
        [ Tu.tc "parsing" spec_parsing; Tu.tc "errors" spec_errors ] );
      ( "requests",
        [
          Tu.tc "builders + run_request" request_builders;
          Tu.tc "validation" request_validation;
          Tu.tc "of_json exec block" request_of_json_exec;
        ] );
    ]
