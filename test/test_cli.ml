(** End-to-end tests of the installed CLI surfaces: flag validation and
    the [-] (stdout) convention of the JSON sinks.  These spawn the real
    executables, so they cover the argument wiring the library-level
    tests cannot. *)

module J = Obs.Json

(* resolve the binaries relative to this test executable so the tests
   work both under `dune runtest` (cwd = _build/default/test) and
   `dune exec` (cwd = project root) *)
let bin name =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" name))

let xmtsim = bin "xmtsim_cli.exe"
let xmtcc = bin "xmtcc.exe"

(* a program with no program output, so stdout can carry pure JSON *)
let quiet_src = "int A[8]; int main(void) { spawn(0, 7) { A[$] = $; } return 0; }"

let with_src f =
  let path = Filename.temp_file "xmtcli" ".c" in
  let oc = open_out path in
  output_string oc quiet_src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(** Run [argv], returning (exit code, stdout, stderr). *)
let run_cmd args =
  let out = Filename.temp_file "xmtcli" ".out"
  and err = Filename.temp_file "xmtcli" ".err" in
  let cmd =
    Printf.sprintf "%s > %s 2> %s"
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let read p =
    let ic = open_in p in
    Fun.protect
      ~finally:(fun () -> close_in ic; Sys.remove p)
      (fun () -> In_channel.input_all ic)
  in
  (code, read out, read err)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let functional_trace_json_rejected () =
  with_src (fun src ->
      let code, _, err =
        run_cmd [ xmtsim; src; "--functional"; "--export"; "trace=t.json" ]
      in
      Tu.check_int "nonzero exit" 2 code;
      Tu.check_bool "explains the fix" true
        (let has needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         has "cycle-accurate" err && has "--functional" err);
      Tu.check_bool "no file written" false (Sys.file_exists "t.json");
      (* same contract for the other cycle-level sinks *)
      let code, _, _ =
        run_cmd [ xmtsim; src; "--functional"; "--export"; "timeseries=t.json" ]
      in
      Tu.check_int "timeseries rejected" 2 code;
      let code, _, _ = run_cmd [ xmtsim; src; "--functional"; "--governor" ] in
      Tu.check_int "governor rejected" 2 code)

let stats_json_to_stdout () =
  with_src (fun src ->
      let code, out, _ =
        run_cmd [ xmtsim; src; "--export"; "stats=-"; "--governor" ]
      in
      Tu.check_int "exit 0" 0 code;
      let j = J.of_string out in
      Tu.check_bool "schema v2" true
        (J.member "schema" j = Some (J.Str "xmt.metrics.v2"));
      Tu.check_bool "has metrics" true
        (match J.member "metrics" j with Some (J.List (_ :: _)) -> true | _ -> false);
      Tu.check_bool "governor section rides along" true
        (match J.member "governor" j with
        | Some (J.Obj fields) -> List.mem_assoc "decisions" fields
        | _ -> false))

let trace_and_timeseries_to_stdout () =
  with_src (fun src ->
      let code, out, _ = run_cmd [ xmtsim; src; "--export"; "trace=-" ] in
      Tu.check_int "trace exit 0" 0 code;
      Tu.check_bool "trace is a json array" true
        (match J.of_string out with J.List (_ :: _) -> true | _ -> false);
      let code, out, _ = run_cmd [ xmtsim; src; "--export"; "timeseries=-" ] in
      Tu.check_int "timeseries exit 0" 0 code;
      let j = J.of_string out in
      Tu.check_bool "timeseries schema" true
        (J.member "schema" j = Some (J.Str "xmt.timeseries.v1")))

let timings_json_to_stdout () =
  with_src (fun src ->
      let code, out, _ = run_cmd [ xmtcc; src; "--timings-json"; "-" ] in
      Tu.check_int "exit 0" 0 code;
      let j = J.of_string out in
      Tu.check_bool "timings schema" true
        (J.member "schema" j = Some (J.Str "xmt.timings.v1")))

let functional_stats_json_still_works () =
  (* the stats export stays available in functional mode (envelope with
     the functional counters), including to stdout *)
  with_src (fun src ->
      let code, out, _ =
        run_cmd [ xmtsim; src; "--functional"; "--export"; "stats=-" ]
      in
      Tu.check_int "exit 0" 0 code;
      let j = J.of_string out in
      Tu.check_bool "schema v2" true
        (J.member "schema" j = Some (J.Str "xmt.metrics.v2")))

let export_flag_to_stdout () =
  with_src (fun src ->
      let code, out, err = run_cmd [ xmtsim; src; "--export"; "stats=-" ] in
      Tu.check_int "exit 0" 0 code;
      Tu.check_bool "no deprecation warning" false (contains "deprecated" err);
      let j = J.of_string out in
      Tu.check_bool "schema v2" true
        (J.member "schema" j = Some (J.Str "xmt.metrics.v2")))

let removed_alias_errors () =
  (* the PR-4-deprecated one-flag-per-sink aliases are gone: each fails
     fast (cmdliner's CLI-error code) naming the --export replacement *)
  with_src (fun src ->
      List.iter
        (fun (args, kind) ->
          let code, _, err = run_cmd ((xmtsim :: src :: args)) in
          Tu.check_int (String.concat " " args ^ " exits 124") 124 code;
          Tu.check_bool "names the replacement" true
            (contains ("--export " ^ kind) err))
        [
          ([ "--stats-json"; "s.json" ], "stats");
          ([ "--trace-json=t.json" ], "trace");
          ([ "--timeseries-json"; "-" ], "timeseries");
        ])


let with_campaign_file f =
  let path = Filename.temp_file "xmtcli" ".json" in
  let spec =
    J.Obj
      [
        ("schema", J.Str "xmt.campaign.v1");
        ("defaults", J.Obj [ ("preset", J.Str "tiny") ]);
        ( "jobs",
          J.List
            (List.map
               (fun (name, seed) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("inline", J.Str quiet_src);
                     ("seed", J.Int seed);
                   ])
               [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]) );
      ]
  in
  J.write_file path spec;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let campaign_runs_and_is_deterministic () =
  with_campaign_file (fun spec ->
      let run jobs =
        run_cmd
          [ xmtsim; "--campaign"; spec; "--jobs"; jobs;
            "--export"; "campaign-det=-" ]
      in
      let code1, out1, _ = run "1" in
      let code2, out2, _ = run "2" in
      Tu.check_int "serial exit 0" 0 code1;
      Tu.check_int "parallel exit 0" 0 code2;
      Tu.check_string "byte-identical reports" out1 out2;
      let j = J.of_string out1 in
      Tu.check_bool "campaign schema" true
        (J.member "schema" j = Some (J.Str "xmt.campaign.v1"));
      Tu.check_bool "four jobs" true (J.member "jobs" j = Some (J.Int 4));
      Tu.check_bool "four results" true
        (match J.member "results" j with
        | Some (J.List l) -> List.length l = 4
        | _ -> false))

let campaign_failure_sets_exit_code () =
  let path = Filename.temp_file "xmtcli" ".json" in
  J.write_file path
    (J.Obj
       [
         ("schema", J.Str "xmt.campaign.v1");
         ( "jobs",
           J.List
             [
               J.Obj
                 [ ("name", J.Str "ok"); ("inline", J.Str quiet_src);
                   ("preset", J.Str "tiny") ];
               J.Obj
                 [ ("name", J.Str "broken"); ("inline", J.Str "syntax error {");
                   ("preset", J.Str "tiny") ];
             ] );
       ]);
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, _, err =
        run_cmd [ xmtsim; "--campaign"; path; "--export"; "campaign=-" ]
      in
      Tu.check_int "failure propagates to exit code" 1 code;
      Tu.check_bool "summary names the failure" true (contains "broken" err))

let campaign_exec_block () =
  (* the spec file's exec block supplies jobs/retries when the flags are
     absent; an invalid one is rejected like any other spec error *)
  with_campaign_file (fun spec ->
      let j = J.of_string (In_channel.with_open_text spec In_channel.input_all) in
      let with_exec exec =
        match j with
        | J.Obj kvs -> J.Obj (kvs @ [ ("exec", exec) ])
        | _ -> assert false
      in
      let path = Filename.temp_file "xmtcli" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          J.write_file path
            (with_exec (J.Obj [ ("jobs", J.Int 2); ("retries", J.Int 1) ]));
          let code, out, _ =
            run_cmd
              [ xmtsim; "--campaign"; path; "--export"; "campaign-det=-" ]
          in
          Tu.check_int "exec-driven run exits 0" 0 code;
          Tu.check_bool "campaign schema" true
            (J.member "schema" (J.of_string out)
            = Some (J.Str "xmt.campaign.v1"));
          J.write_file path (with_exec (J.Obj [ ("jobs", J.Int 0) ]));
          let code, _, err =
            run_cmd [ xmtsim; "--campaign"; path; "--export"; "campaign=-" ]
          in
          Tu.check_int "bad exec rejected" 1 code;
          Tu.check_bool "names the constraint" true (contains "jobs" err)))

(* ---- predict mode and the schema-registry-backed kind listing ---- *)

let unknown_export_kind_lists_registry () =
  with_src (fun src ->
      let code, _, err =
        run_cmd [ xmtsim; src; "--export"; "bogus=x.json" ]
      in
      Tu.check_int "cmdliner CLI-error code" 124 code;
      Tu.check_bool "names the bad kind" true (contains "bogus" err);
      (* the suggestion list is derived from the schema registry, so
         every registered kind must appear — the listing cannot drift *)
      List.iter
        (fun kind ->
          Tu.check_bool (kind ^ " listed") true (contains kind err))
        Obs.Schema.export_kinds;
      Tu.check_bool "no file written" false (Sys.file_exists "x.json"))

let predict_mode_exports () =
  with_src (fun src ->
      let code, out, _ =
        run_cmd
          [ xmtsim; src; "--mode"; "predict"; "--export"; "predict=-" ]
      in
      Tu.check_int "exit 0" 0 code;
      let j = J.of_string out in
      Tu.check_bool "xmt.predict.v1" true
        (J.member "schema" j = Some (J.Str "xmt.predict.v1"));
      Tu.check_bool "has predicted_cycles" true
        (match J.member "predicted_cycles" j with
        | Some (J.Int n) -> n > 0
        | _ -> false))

let predict_exports_need_predict_mode () =
  with_src (fun src ->
      List.iter
        (fun kind ->
          let code, _, err =
            run_cmd [ xmtsim; src; "--export"; kind ^ "=-" ]
          in
          Tu.check_int (kind ^ " rejected") 1 code;
          Tu.check_bool "names --mode predict" true
            (contains "--mode predict" err))
        [ "predict"; "reuseprofile" ];
      (* the flag's converter checks the file exists, so hand it one *)
      let cal = Filename.temp_file "xmtcli" ".json" in
      let code, _, err =
        Fun.protect
          ~finally:(fun () -> Sys.remove cal)
          (fun () -> run_cmd [ xmtsim; src; "--calibration"; cal ])
      in
      Tu.check_int "--calibration rejected" 1 code;
      Tu.check_bool "names --mode predict" true
        (contains "--mode predict" err))

let attach_needs_connect () =
  let code, _, err = run_cmd [ xmtsim; "--attach"; "c1" ] in
  Tu.check_int "exit 1" 1 code;
  Tu.check_bool "names --connect" true (contains "--connect" err)

let connect_refused_exits_3 () =
  with_campaign_file (fun spec ->
      let code, _, err =
        run_cmd
          [ xmtsim; "--connect"; "/nonexistent/xmtserved.sock";
            "--campaign"; spec ]
      in
      Tu.check_int "exit 3" 3 code;
      Tu.check_bool "mentions xmtserved" true (contains "xmtserved" err))

let () =
  Alcotest.run "cli"
    [
      ( "json sinks",
        [
          Tu.tc "functional rejects cycle-level sinks" functional_trace_json_rejected;
          Tu.tc "stats export to stdout (+governor)" stats_json_to_stdout;
          Tu.tc "trace/timeseries to stdout" trace_and_timeseries_to_stdout;
          Tu.tc "timings-json to stdout" timings_json_to_stdout;
          Tu.tc "functional stats export works" functional_stats_json_still_works;
        ] );
      ( "export",
        [
          Tu.tc "--export stats=- to stdout" export_flag_to_stdout;
          Tu.tc "removed aliases error with replacement" removed_alias_errors;
          Tu.tc "unknown kind lists the registry" unknown_export_kind_lists_registry;
        ] );
      ( "predict",
        [
          Tu.tc "--mode predict exports xmt.predict.v1" predict_mode_exports;
          Tu.tc "predict sinks need --mode predict" predict_exports_need_predict_mode;
        ] );
      ( "campaign",
        [
          Tu.tc "runs + parallel determinism" campaign_runs_and_is_deterministic;
          Tu.tc "spec exec block supplies the knobs" campaign_exec_block;
          Tu.tc "failure sets exit code" campaign_failure_sets_exit_code;
        ] );
      ( "serve",
        [
          Tu.tc "--attach needs --connect" attach_needs_connect;
          Tu.tc "connect failure exits 3" connect_refused_exits_3;
        ] );
    ]
