(** Tests for the discrete-event engine (paper §III-C/D). *)

module D = Desim

let heap_pop_order () =
  let h = D.Event_heap.create () in
  D.Event_heap.add h ~time:5 ~prio:0 "c";
  D.Event_heap.add h ~time:1 ~prio:0 "a";
  D.Event_heap.add h ~time:3 ~prio:0 "b";
  let pop () = let _, _, x = D.Event_heap.pop h in x in
  Tu.check_string "first" "a" (pop ());
  Tu.check_string "second" "b" (pop ());
  Tu.check_string "third" "c" (pop ())

let heap_priority_breaks_ties () =
  let h = D.Event_heap.create () in
  D.Event_heap.add h ~time:2 ~prio:5 "low-prio";
  D.Event_heap.add h ~time:2 ~prio:1 "high-prio";
  let _, _, x = D.Event_heap.pop h in
  Tu.check_string "priority first" "high-prio" x

let heap_fifo_within_priority () =
  let h = D.Event_heap.create () in
  for i = 0 to 9 do
    D.Event_heap.add h ~time:1 ~prio:0 i
  done;
  for i = 0 to 9 do
    let _, _, x = D.Event_heap.pop h in
    Tu.check_int (Printf.sprintf "fifo %d" i) i x
  done

let heap_empty_raises () =
  let h = D.Event_heap.create () in
  Alcotest.check_raises "empty pop" Not_found (fun () ->
      ignore (D.Event_heap.pop h : int * int * unit))

let heap_min_time () =
  let h = D.Event_heap.create () in
  Alcotest.(check (option int)) "empty" None (D.Event_heap.min_time h);
  D.Event_heap.add h ~time:7 ~prio:0 ();
  Alcotest.(check (option int)) "seven" (Some 7) (D.Event_heap.min_time h)

(* ------------------------------------------------------------------ *)

let scheduler_time_jumps () =
  (* DE simulation: time advances to event timestamps, not in unit steps
     (paper Fig. 5b). *)
  let s = D.Scheduler.create () in
  let seen = ref [] in
  D.Scheduler.schedule s ~delay:100 (fun () -> seen := 100 :: !seen);
  D.Scheduler.schedule s ~delay:3 (fun () -> seen := 3 :: !seen);
  let outcome = D.Scheduler.run s in
  Tu.check_bool "drained" true (outcome = D.Scheduler.Drained);
  Alcotest.(check (list int)) "order" [ 3; 100 ] (List.rev !seen);
  Tu.check_int "time" 100 (D.Scheduler.now s);
  Tu.check_int "events" 2 (D.Scheduler.events_processed s)

let scheduler_stop_event () =
  let s = D.Scheduler.create () in
  let ran = ref 0 in
  D.Scheduler.schedule s ~delay:1 (fun () -> incr ran);
  D.Scheduler.stop s ~time:5 ();
  D.Scheduler.schedule s ~delay:10 (fun () -> incr ran);
  let outcome = D.Scheduler.run s in
  Tu.check_bool "stopped" true (outcome = D.Scheduler.Stopped);
  Tu.check_int "only first ran" 1 !ran;
  Tu.check_int "stop time" 5 (D.Scheduler.now s)

let scheduler_budget () =
  let s = D.Scheduler.create () in
  let rec reschedule () = D.Scheduler.schedule s ~delay:1 reschedule in
  reschedule ();
  let outcome = D.Scheduler.run ~max_events:50 s in
  Tu.check_bool "budget" true (outcome = D.Scheduler.Budget)

let scheduler_rejects_past () =
  let s = D.Scheduler.create () in
  D.Scheduler.schedule s ~delay:10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument
        "Scheduler.schedule_at: time 5 is in the past (now 10)") (fun () ->
          D.Scheduler.schedule_at s ~time:5 (fun () -> ())));
  ignore (D.Scheduler.run s)

let scheduler_stale_stop () =
  (* Regression: a budget stop armed for one run must not leak into the
     next.  Run 1 arms a stop at t=100 but terminates early (t=1, the
     machine-halt pattern); pre-fix, the unconsumed t=100 stop stayed in
     the heap and silently truncated run 2 before its t=149 event. *)
  let s = D.Scheduler.create () in
  D.Scheduler.stop s ~time:100 ();
  D.Scheduler.schedule s ~delay:1 (fun () -> D.Scheduler.stop s ());
  Tu.check_bool "run 1 stopped" true (D.Scheduler.run s = D.Scheduler.Stopped);
  Tu.check_int "run 1 halt time" 1 (D.Scheduler.now s);
  let ran = ref false in
  D.Scheduler.schedule s ~delay:149 (fun () -> ran := true);
  D.Scheduler.stop s ~time:200 ();
  Tu.check_bool "run 2 stopped" true (D.Scheduler.run s = D.Scheduler.Stopped);
  Tu.check_bool "event past the stale stop ran" true !ran;
  Tu.check_int "run 2 reaches its own stop" 200 (D.Scheduler.now s)

let scheduler_stop_rejects_past () =
  let s = D.Scheduler.create () in
  D.Scheduler.schedule s ~delay:10 (fun () ->
      Alcotest.check_raises "past stop"
        (Invalid_argument "Scheduler.stop: time 5 is in the past (now 10)")
        (fun () -> D.Scheduler.stop s ~time:5 ()));
  ignore (D.Scheduler.run s)

let scheduler_nested_scheduling () =
  let s = D.Scheduler.create () in
  let log = ref [] in
  D.Scheduler.schedule s ~delay:1 (fun () ->
      log := "a" :: !log;
      D.Scheduler.schedule s ~delay:0 (fun () -> log := "b" :: !log));
  ignore (D.Scheduler.run s);
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log)

(* ------------------------------------------------------------------ *)

let actor_notify () =
  let s = D.Scheduler.create () in
  let count = ref 0 in
  let action a =
    incr count;
    if !count < 5 then D.Actor.notify_in a ~delay:2
  in
  let a = D.Actor.create s ~name:"counter" action in
  D.Actor.notify_in a ~delay:2;
  ignore (D.Scheduler.run s);
  Tu.check_int "notified five times" 5 !count;
  Tu.check_int "notifications counter" 5 (D.Actor.notifications a);
  Tu.check_int "time" 10 (D.Scheduler.now s)

(* ------------------------------------------------------------------ *)

let clock_ticks () =
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:3 in
  let ticks = ref [] in
  D.Clock.on_tick c (fun cy -> ticks := cy :: !ticks);
  D.Clock.start c;
  D.Scheduler.stop s ~time:10 ();
  ignore (D.Scheduler.run s);
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 3 ] (List.rev !ticks)

let clock_phases_order () =
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:1 in
  let log = ref [] in
  D.Clock.on_tick ~phase:1 c (fun _ -> log := "transfer" :: !log);
  D.Clock.on_tick ~phase:0 c (fun _ -> log := "negotiate" :: !log);
  D.Clock.start c;
  D.Scheduler.stop s ~time:0 ();
  ignore (D.Scheduler.run s);
  (* stop fires at prio_stop, after the tick at time 0 *)
  Alcotest.(check (list string)) "phases" [ "negotiate"; "transfer" ] (List.rev !log)

let clock_dvfs () =
  (* frequency change mid-run (paper §III-B) *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:1 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ ->
      times := D.Scheduler.now s :: !times;
      if D.Scheduler.now s = 2 then D.Clock.set_period c 4);
  D.Clock.start c;
  D.Scheduler.stop s ~time:12 ();
  ignore (D.Scheduler.run s);
  (* the new period takes effect after the tick at t=2 *)
  Alcotest.(check (list int)) "tick times" [ 0; 1; 2; 6; 10 ] (List.rev !times)

let clock_gating () =
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:1 in
  let n = ref 0 in
  D.Clock.on_tick c (fun _ ->
      incr n;
      if !n = 3 then D.Clock.disable c);
  D.Clock.start c;
  D.Scheduler.schedule s ~delay:10 (fun () -> D.Clock.enable c);
  D.Scheduler.stop s ~time:12 ();
  ignore (D.Scheduler.run s);
  (* 3 ticks, gap, then ticks at 11 and 12 *)
  Tu.check_int "ticks" 5 !n

let clock_sleep_wake () =
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:2 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ ->
      times := D.Scheduler.now s :: !times;
      if D.Scheduler.now s = 4 then D.Clock.sleep c);
  D.Clock.start c;
  D.Scheduler.schedule s ~delay:11 (fun () -> D.Clock.wake c);
  D.Scheduler.stop s ~time:15 ();
  ignore (D.Scheduler.run s);
  (* sleeping skips 6..10; wake at 11 -> next grid point 12 *)
  Alcotest.(check (list int)) "tick times" [ 0; 2; 4; 12; 14 ] (List.rev !times)

let clock_wake_grid_tiebreak () =
  (* Wake landing exactly on a grid point from transfer priority: the
     grid tick at that instant already popped (as a no-op or not at all),
     so the clock must resume one period later — matching an ungated run
     where a package arriving at prio_transfer is seen on the NEXT tick. *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:2 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ ->
      times := D.Scheduler.now s :: !times;
      if D.Scheduler.now s = 4 then D.Clock.sleep c);
  D.Clock.start c;
  D.Scheduler.schedule s ~prio:D.Scheduler.prio_transfer ~delay:8 (fun () ->
      D.Clock.wake c);
  D.Scheduler.stop s ~time:11 ();
  ignore (D.Scheduler.run s);
  Alcotest.(check (list int)) "tick times" [ 0; 2; 4; 10 ] (List.rev !times);
  (* grid points 6 and 8 were gated away *)
  Tu.check_int "skipped" 2 (D.Clock.skipped_ticks c)

let clock_wake_grid_at_tick_prio () =
  (* Same instant, but the waker runs at prio_tick (a scheduled callback,
     e.g. a DRAM fill completing): in an ungated run the grid tick pops
     after it, so the woken clock still ticks at the wake instant. *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:2 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ ->
      times := D.Scheduler.now s :: !times;
      if D.Scheduler.now s = 4 then D.Clock.sleep c);
  D.Clock.start c;
  D.Scheduler.schedule s ~delay:8 (fun () -> D.Clock.wake c);
  D.Scheduler.stop s ~time:11 ();
  ignore (D.Scheduler.run s);
  Alcotest.(check (list int)) "tick times" [ 0; 2; 4; 8; 10 ] (List.rev !times)

let clock_sleep_pending_no_tick_leak () =
  (* The tick at t=0 fires and schedules the t=2 tick; sleeping at t=1
     must not let that pending event run handlers or count a cycle. *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:2 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ -> times := D.Scheduler.now s :: !times);
  D.Clock.start c;
  D.Scheduler.schedule s ~prio:D.Scheduler.prio_transfer ~delay:1 (fun () ->
      D.Clock.sleep c);
  D.Scheduler.stop s ~time:10 ();
  ignore (D.Scheduler.run s);
  Alcotest.(check (list int)) "only t=0 ticked" [ 0 ] (List.rev !times);
  Tu.check_int "cycles" 1 (D.Clock.cycles c)

let clock_set_period_during_sleep () =
  (* A DVFS change while gated takes effect at the next woken tick: the
     resume grid is anchored at the last fired tick (t=4) with the new
     period (3), so 4 + 2*3 = 10 is the first tick >= the t=9 wake.  The
     skipped span before the change is accrued at the old period (the
     single grid point at t=6), not recounted at the new rate. *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:2 in
  let times = ref [] in
  D.Clock.on_tick c (fun _ ->
      times := D.Scheduler.now s :: !times;
      if D.Scheduler.now s = 4 then D.Clock.sleep c);
  D.Clock.start c;
  D.Scheduler.schedule s ~delay:6 (fun () -> D.Clock.set_period c 3);
  D.Scheduler.schedule s ~delay:9 (fun () -> D.Clock.wake c);
  D.Scheduler.stop s ~time:14 ();
  ignore (D.Scheduler.run s);
  Alcotest.(check (list int)) "tick times" [ 0; 2; 4; 10; 13 ] (List.rev !times);
  Tu.check_int "no double-count across the period change" 1
    (D.Clock.skipped_ticks c)

let clock_skipped_ticks_estimate () =
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"clk" ~period:1 in
  D.Clock.on_tick c (fun _ -> if D.Scheduler.now s = 2 then D.Clock.sleep c);
  D.Clock.start c;
  (* live estimate mid-sleep: grid points 3..6 never fired *)
  D.Scheduler.schedule s ~prio:D.Scheduler.prio_transfer ~delay:6 (fun () ->
      Tu.check_int "live estimate while asleep" 4 (D.Clock.skipped_ticks c));
  D.Scheduler.schedule s ~delay:10 (fun () -> D.Clock.wake c);
  D.Scheduler.stop s ~time:20 ();
  ignore (D.Scheduler.run s);
  (* slept over 3..9 (the wake instant ticks again), then ran 10..20 *)
  Tu.check_int "fired" 14 (D.Clock.cycles c);
  Tu.check_int "skipped" 7 (D.Clock.skipped_ticks c);
  Tu.check_int "fired + skipped = ungated cycles" 21
    (D.Clock.cycles c + D.Clock.skipped_ticks c)

let clock_macro_actor_grouping () =
  (* one clock event drives many components per cycle (§III-D): event
     count is per-cycle, not per-component *)
  let s = D.Scheduler.create () in
  let c = D.Clock.create s ~name:"macro" ~period:1 in
  let work = ref 0 in
  for _ = 1 to 100 do
    D.Clock.on_tick c (fun _ -> incr work)
  done;
  D.Clock.start c;
  D.Scheduler.stop s ~time:9 ();
  ignore (D.Scheduler.run s);
  Tu.check_int "work" 1000 !work;
  (* 10 tick events + stop *)
  Tu.check_bool "few events" true (D.Scheduler.events_processed s <= 12)

(* ------------------------------------------------------------------ *)

let port_fifo () =
  let p = D.Port.create ~name:"p" ~capacity:2 in
  Tu.check_bool "push1" true (D.Port.push p 1);
  Tu.check_bool "push2" true (D.Port.push p 2);
  Tu.check_bool "full" false (D.Port.push p 3);
  Alcotest.(check (option int)) "peek" (Some 1) (D.Port.peek p);
  Alcotest.(check (option int)) "pop" (Some 1) (D.Port.pop p);
  Tu.check_bool "room again" true (D.Port.can_push p);
  Tu.check_int "pushed total" 2 (D.Port.pushed_total p)

let port_unbounded () =
  let p = D.Port.create ~name:"p" ~capacity:0 in
  for i = 1 to 1000 do
    D.Port.push_exn p i
  done;
  Tu.check_int "length" 1000 (D.Port.length p);
  Alcotest.(check (list int)) "drain prefix" [ 1; 2; 3 ]
    (match D.Port.drain p with a :: b :: c :: _ -> [ a; b; c ] | _ -> [])

(* ------------------------------------------------------------------ *)

let checkpoint_roundtrip () =
  let r = D.Checkpoint.create () in
  let state = ref 42 in
  D.Checkpoint.register r ~name:"counter" ~save:(fun () -> !state)
    ~load:(fun v -> state := v);
  let blob = D.Checkpoint.save r in
  state := 0;
  D.Checkpoint.restore r blob;
  Tu.check_int "restored" 42 !state

let checkpoint_file_roundtrip () =
  let r = D.Checkpoint.create () in
  let state = ref [ 1; 2; 3 ] in
  D.Checkpoint.register r ~name:"list" ~save:(fun () -> !state)
    ~load:(fun v -> state := v);
  let blob = D.Checkpoint.save r in
  let path = Filename.temp_file "ckpt" ".bin" in
  D.Checkpoint.to_file blob path;
  state := [];
  D.Checkpoint.restore r (D.Checkpoint.of_file path);
  Sys.remove path;
  Alcotest.(check (list int)) "restored" [ 1; 2; 3 ] !state

let checkpoint_duplicate_name () =
  let r = D.Checkpoint.create () in
  D.Checkpoint.register r ~name:"x" ~save:(fun () -> 0) ~load:(fun _ -> ());
  Alcotest.check_raises "dup"
    (Invalid_argument "Checkpoint.register: duplicate name \"x\"") (fun () ->
      D.Checkpoint.register r ~name:"x" ~save:(fun () -> 0) ~load:(fun _ -> ()))

(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = D.Rng.create ~seed:7 and b = D.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Tu.check_int "same stream" (D.Rng.int a 1000) (D.Rng.int b 1000)
  done

let rng_split_independent () =
  let a = D.Rng.create ~seed:7 in
  let c = D.Rng.split a in
  let x = D.Rng.int a 1000000 and y = D.Rng.int c 1000000 in
  Tu.check_bool "different streams" true (x <> y)

let rng_bounds () =
  let a = D.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = D.Rng.int a 17 in
    Tu.check_bool "in range" true (v >= 0 && v < 17)
  done

(* qcheck: the heap always pops in nondecreasing key order *)
let qcheck_heap_sorted =
  QCheck.Test.make ~count:200 ~name:"event heap pops sorted"
    QCheck.(list (pair small_nat small_nat))
    (fun entries ->
      let h = D.Event_heap.create () in
      List.iter (fun (t, p) -> D.Event_heap.add h ~time:t ~prio:p ()) entries;
      let rec drain last ok =
        if D.Event_heap.is_empty h then ok
        else begin
          let t, p, () = D.Event_heap.pop h in
          drain (t, p) (ok && (t, p) >= last)
        end
      in
      drain (min_int, min_int) true)

let () =
  Alcotest.run "desim"
    [
      ( "event_heap",
        [
          Tu.tc "pop order" heap_pop_order;
          Tu.tc "priority ties" heap_priority_breaks_ties;
          Tu.tc "fifo within priority" heap_fifo_within_priority;
          Tu.tc "empty raises" heap_empty_raises;
          Tu.tc "min time" heap_min_time;
          QCheck_alcotest.to_alcotest qcheck_heap_sorted;
        ] );
      ( "scheduler",
        [
          Tu.tc "time jumps" scheduler_time_jumps;
          Tu.tc "stop event" scheduler_stop_event;
          Tu.tc "event budget" scheduler_budget;
          Tu.tc "rejects past" scheduler_rejects_past;
          Tu.tc "stale stop is a no-op" scheduler_stale_stop;
          Tu.tc "stop rejects past" scheduler_stop_rejects_past;
          Tu.tc "nested scheduling" scheduler_nested_scheduling;
        ] );
      ("actor", [ Tu.tc "notify" actor_notify ]);
      ( "clock",
        [
          Tu.tc "ticks" clock_ticks;
          Tu.tc "phase order" clock_phases_order;
          Tu.tc "dvfs" clock_dvfs;
          Tu.tc "gating" clock_gating;
          Tu.tc "sleep/wake" clock_sleep_wake;
          Tu.tc "wake on grid (transfer prio)" clock_wake_grid_tiebreak;
          Tu.tc "wake on grid (tick prio)" clock_wake_grid_at_tick_prio;
          Tu.tc "sleep with pending tick" clock_sleep_pending_no_tick_leak;
          Tu.tc "set_period during sleep" clock_set_period_during_sleep;
          Tu.tc "skipped-tick estimate" clock_skipped_ticks_estimate;
          Tu.tc "macro-actor grouping" clock_macro_actor_grouping;
        ] );
      ( "port",
        [ Tu.tc "fifo" port_fifo; Tu.tc "unbounded" port_unbounded ] );
      ( "checkpoint",
        [
          Tu.tc "roundtrip" checkpoint_roundtrip;
          Tu.tc "file roundtrip" checkpoint_file_roundtrip;
          Tu.tc "duplicate name" checkpoint_duplicate_name;
        ] );
      ( "rng",
        [
          Tu.tc "deterministic" rng_deterministic;
          Tu.tc "split" rng_split_independent;
          Tu.tc "bounds" rng_bounds;
        ] );
    ]
