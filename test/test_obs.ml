(** Tests for the Obs telemetry layer (metrics registry, Chrome-trace
    tracer, JSON round-trip) and its wiring into the simulator. *)

module J = Obs.Json
module M = Obs.Metrics
module T = Obs.Tracer

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.List [ J.Str "x\"y\n"; J.Bool true; J.Null ]);
        ("c", J.Float 2.5);
        ("nested", J.Obj [ ("deep", J.List [ J.Int (-7) ]) ]);
      ]
  in
  let s = J.to_string v in
  Tu.check_bool "compact round-trips" true (J.of_string s = v);
  let p = J.to_string ~pretty:true v in
  Tu.check_bool "pretty round-trips" true (J.of_string p = v)

let json_string_escaping () =
  let enc s = J.to_string (J.Str s) in
  Tu.check_string "quote" "\"x\\\"y\"" (enc "x\"y");
  Tu.check_string "backslash" "\"a\\\\b\"" (enc "a\\b");
  Tu.check_string "newline" "\"a\\nb\"" (enc "a\nb");
  Tu.check_string "cr+tab" "\"\\r\\t\"" (enc "\r\t");
  Tu.check_string "control chars" "\"\\u0001\\u001f\"" (enc "\x01\x1f");
  let tricky = "a\"b\\c\nd\re\tf\x01g\x1fh" in
  Tu.check_bool "tricky round-trips" true (J.of_string (enc tricky) = J.Str tricky);
  (* object keys go through the same escaper *)
  let o = J.Obj [ ("k\"\n", J.Int 1) ] in
  Tu.check_bool "key round-trips" true (J.of_string (J.to_string o) = o);
  Tu.check_bool "pretty key round-trips" true
    (J.of_string (J.to_string ~pretty:true o) = o)

let json_rejects_garbage () =
  let bad s = match J.of_string s with exception J.Parse_error _ -> true | _ -> false in
  Tu.check_bool "trailing" true (bad "{} x");
  Tu.check_bool "unterminated" true (bad "\"abc");
  Tu.check_bool "bare word" true (bad "flase")

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let registry_counters_gauges () =
  let reg = M.create () in
  let c = M.counter reg "sim.cycles" in
  M.inc ~by:10 c;
  M.inc c;
  Tu.check_int "counter read" 11 (Option.get (M.counter_value reg "sim.cycles"));
  (* same name + labels = same instrument; different labels = distinct *)
  let h = M.counter reg ~labels:[ ("outcome", "hit") ] "sim.cache.accesses" in
  let m = M.counter reg ~labels:[ ("outcome", "miss") ] "sim.cache.accesses" in
  M.inc ~by:3 h;
  M.inc ~by:2 (M.counter reg ~labels:[ ("outcome", "hit") ] "sim.cache.accesses");
  M.inc m;
  Tu.check_int "labelled hit" 5
    (Option.get (M.counter_value reg ~labels:[ ("outcome", "hit") ] "sim.cache.accesses"));
  Tu.check_int "labelled miss" 1
    (Option.get (M.counter_value reg ~labels:[ ("outcome", "miss") ] "sim.cache.accesses"));
  M.set (M.gauge reg "host.events_per_sec") 123.5;
  Tu.check_bool "gauge read" true
    (M.gauge_value reg "host.events_per_sec" = Some 123.5);
  (* kind mismatch is rejected *)
  Tu.check_bool "kind clash raises" true
    (match M.gauge reg "sim.cycles" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let registry_merge () =
  let a = M.create () and b = M.create () in
  M.inc ~by:5 (M.counter a "n");
  M.inc ~by:7 (M.counter b "n");
  M.set (M.gauge b "g") 2.0;
  M.merge ~into:a b;
  Tu.check_int "counters add" 12 (Option.get (M.counter_value a "n"));
  Tu.check_bool "gauge copied" true (M.gauge_value a "g" = Some 2.0)

let histogram_bucketing () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 1.0; 2.0; 5.0 ] "lat" in
  List.iter (M.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 100.0 ];
  (* counts per bucket: <=1 -> 2, <=2 -> 2, <=5 -> 2, overflow -> 1 *)
  Tu.check_int "bucket <=1" 2 h.M.h_counts.(0);
  Tu.check_int "bucket <=2" 2 h.M.h_counts.(1);
  Tu.check_int "bucket <=5" 2 h.M.h_counts.(2);
  Tu.check_int "overflow" 1 h.M.h_counts.(3);
  Tu.check_int "count" 7 h.M.h_count;
  (* merge adds bin counts *)
  let reg2 = M.create () in
  let h2 = M.histogram reg2 ~buckets:[ 1.0; 2.0; 5.0 ] "lat" in
  M.observe h2 0.1;
  M.merge ~into:reg2 reg;
  Tu.check_int "merged bucket <=1" 3 h2.M.h_counts.(0);
  Tu.check_int "merged count" 8 h2.M.h_count

let registry_json () =
  let reg = M.create () in
  M.inc ~by:9 (M.counter reg ~labels:[ ("k", "v") ] "c");
  M.set (M.gauge reg "g") 0.25;
  M.observe (M.histogram reg ~buckets:[ 10.0 ] "h") 3.0;
  let j = J.of_string (J.to_string (M.to_json reg)) in
  Tu.check_bool "schema" true
    (J.member "schema" j = Some (J.Str "xmt.metrics.v2"));
  let metrics = Option.get (J.to_list (Option.get (J.member "metrics" j))) in
  Tu.check_int "three metrics" 3 (List.length metrics);
  let c = List.find (fun m -> J.member "name" m = Some (J.Str "c")) metrics in
  Tu.check_bool "counter value" true (J.member "value" c = Some (J.Int 9));
  Tu.check_bool "labels survive" true
    (J.member "labels" c = Some (J.Obj [ ("k", J.Str "v") ]));
  (* v2: histograms carry min/max and percentile estimates *)
  let h = List.find (fun m -> J.member "name" m = Some (J.Str "h")) metrics in
  List.iter
    (fun k ->
      Tu.check_bool (k ^ " present") true (J.member k h = Some (J.Float 3.0)))
    [ "min"; "max"; "p50"; "p95"; "p99" ]

let histogram_percentiles () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 1.0; 2.0; 5.0; 10.0 ] "lat" in
  Tu.check_bool "empty -> 0" true (M.percentile h 0.95 = 0.0);
  (* all mass on one value: every percentile is clamped to it *)
  for _ = 1 to 10 do M.observe h 4.0 done;
  List.iter
    (fun q ->
      Tu.check_bool (Printf.sprintf "p%.0f exact" (q *. 100.)) true
        (M.percentile h q = 4.0))
    [ 0.5; 0.95; 0.99 ];
  (* spread mass: estimates are monotone and bounded by observed range *)
  let h2 = M.histogram reg ~buckets:[ 1.0; 2.0; 5.0; 10.0 ] "lat2" in
  List.iter (M.observe h2) [ 0.5; 0.5; 1.5; 1.5; 3.0; 4.0; 8.0; 9.0; 30.0 ];
  let p50 = M.percentile h2 0.5
  and p95 = M.percentile h2 0.95
  and p99 = M.percentile h2 0.99 in
  Tu.check_bool "monotone" true (p50 <= p95 && p95 <= p99);
  Tu.check_bool "bounded below" true (p50 >= 0.5);
  Tu.check_bool "bounded above by max" true (p99 <= 30.0);
  Tu.check_bool "p50 in the middle buckets" true (p50 >= 1.0 && p50 <= 5.0);
  (* overflow-bucket estimate clamps to the observed max, not infinity *)
  Tu.check_bool "p99 reaches overflow" true (p99 > 9.0)

let histogram_edges () =
  let reg = M.create () in
  (* empty histogram: every percentile is 0, and the JSON export degrades
     the infinite min/max sentinels to 0 instead of emitting non-JSON *)
  let h = M.histogram reg ~buckets:[ 1.0; 10.0 ] "lat" in
  List.iter
    (fun q ->
      Tu.check_bool (Printf.sprintf "empty p%.0f" (q *. 100.)) true
        (M.percentile h q = 0.0))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (match J.member "metrics" (M.to_json reg) with
  | Some (J.List [ m ]) ->
    Tu.check_bool "empty min exports 0" true (J.member "min" m = Some (J.Float 0.0));
    Tu.check_bool "empty max exports 0" true (J.member "max" m = Some (J.Float 0.0));
    Tu.check_bool "empty count" true (J.member "count" m = Some (J.Int 0))
  | _ -> Alcotest.fail "expected one metric");
  (* single sample: min = max = sample, every percentile collapses to it *)
  M.observe h 5.0;
  Tu.check_bool "single min" true (h.M.h_min = 5.0);
  Tu.check_bool "single max" true (h.M.h_max = 5.0);
  List.iter
    (fun q ->
      Tu.check_bool (Printf.sprintf "single p%.0f" (q *. 100.)) true
        (M.percentile h q = 5.0))
    [ 0.5; 0.95; 0.99 ];
  (* single sample in the overflow bucket: still clamped to the sample *)
  let h2 = M.histogram reg ~buckets:[ 1.0 ] "lat2" in
  M.observe h2 100.0;
  Tu.check_bool "overflow single p50" true (M.percentile h2 0.5 = 100.0);
  (* out-of-range q is clamped, not an error *)
  Tu.check_bool "q below 0" true (M.percentile h (-1.0) = 5.0);
  Tu.check_bool "q above 1" true (M.percentile h 2.0 = 5.0)

(* ------------------------------------------------------------------ *)
(* Timeseries ring buffers *)

let timeseries_window () =
  let ts = Obs.Timeseries.create ~window:4 () in
  let c = Obs.Timeseries.channel ts ~help:"h" "x" in
  for i = 1 to 10 do
    Obs.Timeseries.push c ~t:(i * 100) (float_of_int i)
  done;
  Tu.check_int "length capped" 4 (Obs.Timeseries.length c);
  Tu.check_int "pushed" 10 (Obs.Timeseries.pushed c);
  Tu.check_int "dropped" 6 (Obs.Timeseries.dropped c);
  Tu.check_bool "points oldest first" true
    (Obs.Timeseries.points c = [ (700, 7.0); (800, 8.0); (900, 9.0); (1000, 10.0) ]);
  Tu.check_bool "last" true (Obs.Timeseries.last c = Some (1000, 10.0));
  Tu.check_bool "mean over window" true (Obs.Timeseries.mean c = 8.5);
  Tu.check_bool "max over window" true (Obs.Timeseries.max_value c = 10.0);
  (* re-registering the same (name, labels) returns the same channel *)
  let c' = Obs.Timeseries.channel ts "x" in
  Tu.check_int "same channel" 4 (Obs.Timeseries.length c');
  let cl = Obs.Timeseries.channel ts ~labels:[ ("cl", "1") ] "x" in
  Tu.check_int "labelled channel distinct" 0 (Obs.Timeseries.length cl)

let timeseries_window_edges () =
  let ts = Obs.Timeseries.create ~window:4 () in
  let c = Obs.Timeseries.channel ts ~help:"h" "edge" in
  (* exactly [window] pushes: the boundary case drops nothing *)
  for i = 1 to 4 do
    Obs.Timeseries.push c ~t:i (float_of_int i)
  done;
  Tu.check_int "full window length" 4 (Obs.Timeseries.length c);
  Tu.check_int "no drops at boundary" 0 (Obs.Timeseries.dropped c);
  Tu.check_bool "all points retained" true
    (Obs.Timeseries.points c = [ (1, 1.0); (2, 2.0); (3, 3.0); (4, 4.0) ]);
  (* one more push evicts exactly the oldest *)
  Obs.Timeseries.push c ~t:5 5.0;
  Tu.check_int "still window length" 4 (Obs.Timeseries.length c);
  Tu.check_int "exactly one drop" 1 (Obs.Timeseries.dropped c);
  Tu.check_bool "oldest evicted" true
    (Obs.Timeseries.points c = [ (2, 2.0); (3, 3.0); (4, 4.0); (5, 5.0) ]);
  Tu.check_bool "mean tracks the window" true (Obs.Timeseries.mean c = 3.5);
  (* an empty channel is well-defined everywhere *)
  let e = Obs.Timeseries.channel ts "empty" in
  Tu.check_int "empty length" 0 (Obs.Timeseries.length e);
  Tu.check_int "empty dropped" 0 (Obs.Timeseries.dropped e);
  Tu.check_bool "empty points" true (Obs.Timeseries.points e = []);
  Tu.check_bool "empty last" true (Obs.Timeseries.last e = None);
  Tu.check_bool "empty mean" true (Obs.Timeseries.mean e = 0.0);
  Tu.check_bool "empty max" true (Obs.Timeseries.max_value e = 0.0)

let timeseries_json () =
  let ts = Obs.Timeseries.create ~window:8 () in
  let c = Obs.Timeseries.channel ts ~labels:[ ("cl", "0") ] ~help:"temp" "t" in
  Obs.Timeseries.push c ~t:5 1.5;
  Obs.Timeseries.push c ~t:9 2.5;
  let j = J.of_string (J.to_string (Obs.Timeseries.to_json ts)) in
  Tu.check_bool "schema" true
    (J.member "schema" j = Some (J.Str "xmt.timeseries.v1"));
  Tu.check_bool "window" true (J.member "window" j = Some (J.Int 8));
  match J.member "series" j with
  | Some (J.List [ s ]) ->
    Tu.check_bool "name" true (J.member "name" s = Some (J.Str "t"));
    Tu.check_bool "labels" true
      (J.member "labels" s = Some (J.Obj [ ("cl", J.Str "0") ]));
    Tu.check_bool "points" true
      (J.member "points" s
      = Some
          (J.List
             [
               J.List [ J.Int 5; J.Float 1.5 ]; J.List [ J.Int 9; J.Float 2.5 ];
             ]))
  | _ -> Alcotest.fail "expected one series"

(* ------------------------------------------------------------------ *)
(* Bench regression gate *)

let bench_record ~name ~cycles ~rate =
  J.Obj
    [
      ("schema", J.Str "xmt.bench.v1");
      ("bench", J.Str name);
      ("cycles", J.Int cycles);
      ("events_per_sec", J.Float rate);
    ]

let gate_pass_and_fail () =
  let baseline =
    [ bench_record ~name:"a" ~cycles:10000 ~rate:1e6;
      bench_record ~name:"b" ~cycles:20000 ~rate:2e6 ]
  in
  (* identical records pass *)
  let r = Obs.Bench_gate.compare_records ~baseline ~fresh:baseline () in
  Tu.check_bool "self passes" true r.Obs.Bench_gate.passed;
  Tu.check_int "four checks" 4 (List.length r.Obs.Bench_gate.checks);
  (* a >10% cycle regression on one bench fails the gate *)
  let fresh =
    [ bench_record ~name:"a" ~cycles:11200 ~rate:1e6;
      bench_record ~name:"b" ~cycles:20000 ~rate:2e6 ]
  in
  let r = Obs.Bench_gate.compare_records ~baseline ~fresh () in
  Tu.check_bool "regression fails" false r.Obs.Bench_gate.passed;
  Tu.check_int "one failed check" 1
    (List.length
       (List.filter (fun c -> not c.Obs.Bench_gate.ck_ok) r.Obs.Bench_gate.checks));
  Tu.check_bool "render says FAIL" true
    (let s = Obs.Bench_gate.render r in
     List.exists (fun l -> l = "gate: FAIL")
       (String.split_on_char '\n' s));
  (* the failure is spelled out: metric, both values, delta and bound *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Tu.check_bool "regression diagnostics" true
    (let s = Obs.Bench_gate.render r in
     List.exists
       (fun l ->
         contains l "REGRESSED: "
         && List.for_all (contains l)
              [ "a / cycles"; "baseline 10000"; "observed 11200"; "+12.0%";
                "allowed +2.0%" ])
       (String.split_on_char '\n' s));
  (* small deterministic improvements and host-rate noise pass *)
  let fresh =
    [ bench_record ~name:"a" ~cycles:9900 ~rate:0.7e6;
      bench_record ~name:"b" ~cycles:20100 ~rate:2.4e6 ]
  in
  Tu.check_bool "noise passes" true
    (Obs.Bench_gate.compare_records ~baseline ~fresh ()).Obs.Bench_gate.passed

let gate_speedup_floor () =
  let record ?host_cores ~speedup () =
    J.Obj
      ([
         ("schema", J.Str "xmt.bench.v1");
         ("bench", J.Str "campaign");
         ("cycles", J.Int 1000);
         ("speedup", J.Float speedup);
       ]
      @ match host_cores with Some c -> [ ("host_cores", J.Int c) ] | None -> [])
  in
  let baseline = [ record ~host_cores:2 ~speedup:1.5 () ] in
  let gate fresh =
    Obs.Bench_gate.compare_records ~baseline ~fresh:[ fresh ] ()
  in
  (* parallel slower than serial on a multi-core host fails the gate *)
  let r = gate (record ~host_cores:4 ~speedup:0.56 ()) in
  Tu.check_bool "sub-serial speedup fails" false r.Obs.Bench_gate.passed;
  Tu.check_bool "floor check present" true
    (List.exists
       (fun c ->
         c.Obs.Bench_gate.ck_metric = "speedup"
         && (not c.Obs.Bench_gate.ck_ok)
         && c.Obs.Bench_gate.ck_baseline = 1.0)
       r.Obs.Bench_gate.checks);
  (* exactly 1.0 is still "not faster": the bound is strict *)
  Tu.check_bool "speedup = 1.0 fails" false
    (gate (record ~host_cores:2 ~speedup:1.0 ())).Obs.Bench_gate.passed;
  Tu.check_bool "speedup > 1 passes" true
    (gate (record ~host_cores:2 ~speedup:1.2 ())).Obs.Bench_gate.passed;
  (* a single-core host records its speedup but is not gated on it *)
  Tu.check_bool "single core not gated" true
    (gate (record ~host_cores:1 ~speedup:0.9 ())).Obs.Bench_gate.passed;
  Tu.check_bool "no host_cores, no floor" true
    (gate (record ~speedup:0.9 ())).Obs.Bench_gate.passed

let gate_missing_and_new () =
  let baseline = [ bench_record ~name:"a" ~cycles:100 ~rate:1.0 ] in
  let fresh = [ bench_record ~name:"b" ~cycles:100 ~rate:1.0 ] in
  let r = Obs.Bench_gate.compare_records ~baseline ~fresh () in
  (* silently dropping a baselined bench fails; a new bench is only noted *)
  Tu.check_bool "missing fails" false r.Obs.Bench_gate.passed;
  Tu.check_bool "missing listed" true (r.Obs.Bench_gate.missing_in_fresh = [ "a" ]);
  Tu.check_bool "new listed" true (r.Obs.Bench_gate.new_in_fresh = [ "b" ])

(* ------------------------------------------------------------------ *)
(* Tracer: golden structural properties of the emitted trace *)

let trace_events_of_string s =
  match J.of_string s with
  | J.List es -> es
  | _ -> Alcotest.fail "trace is not a JSON array"

let check_trace_invariants name events =
  (* monotone ts over non-metadata events; B/E balanced per (pid,tid) *)
  let prev = ref min_int in
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let get k = Option.get (J.member k e) in
      let ph = Option.get (J.to_str (get "ph")) in
      if ph <> "M" then begin
        let ts = Option.get (J.to_int (get "ts")) in
        if ts < !prev then
          Alcotest.failf "%s: ts not monotone (%d after %d)" name ts !prev;
        prev := ts;
        let key = (J.to_int (get "pid"), J.to_int (get "tid")) in
        let depth = try Hashtbl.find stacks key with Not_found -> 0 in
        if ph = "B" then Hashtbl.replace stacks key (depth + 1);
        if ph = "E" then begin
          if depth <= 0 then Alcotest.failf "%s: E without B" name;
          Hashtbl.replace stacks key (depth - 1)
        end
      end)
    events;
  Hashtbl.iter
    (fun _ d -> if d <> 0 then Alcotest.failf "%s: unclosed B span" name)
    stacks

let tracer_golden () =
  let tr = T.create () in
  T.name_process tr ~pid:1 "sim";
  T.name_thread tr ~pid:1 ~tid:0 "main";
  (* emitted out of ts order on purpose: to_json must sort *)
  T.complete tr ~ts:50 ~dur:10 ~tid:1 ~cat:"tcu" "memwait";
  T.begin_span tr ~ts:0 ~tid:0 ~args:[ ("n", T.A_int 3) ] "spawn";
  T.instant tr ~ts:20 ~tid:1 "icn-inject";
  T.counter tr ~ts:30 "activity" [ ("compute", 5.0); ("memory", 2.0) ];
  T.end_span tr ~ts:100 ~tid:0 ();
  Tu.check_int "length counts non-metadata" 5 (T.length tr);
  let events = trace_events_of_string (T.to_string tr) in
  Tu.check_int "all serialized" 7 (List.length events);
  check_trace_invariants "golden" events;
  (* metadata first, then ts order: B@0 i@20 C@30 X@50 E@100 *)
  let phs =
    List.filter_map (fun e -> J.to_str (Option.get (J.member "ph" e))) events
  in
  Tu.check_bool "phase order" true
    (phs = [ "M"; "M"; "B"; "i"; "C"; "X"; "E" ])

(* ------------------------------------------------------------------ *)
(* Simulator wiring *)

let src =
  {|
int A[32];
int total = 0;
int main(void) {
  spawn(0, 31) {
    int inc = A[$];
    psm(inc, total);
  }
  print_int(total);
  return 0;
}
|}

let stats_export_e2e () =
  (* the same library code path xmtsim --stats-json serializes: export,
     emit, parse back, compare with the text --stats report *)
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 3) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let r = Core.Toolchain.run_cycle ~config:Xmtsim.Config.tiny compiled in
  Tu.check_string "output" "96" r.Core.Toolchain.output;
  let reg = M.create () in
  Xmtsim.Stats.export r.Core.Toolchain.stats reg;
  Tu.check_bool ">= 15 distinct metrics" true (List.length (M.distinct_names reg) >= 15);
  let j = J.of_string (J.to_string (M.to_json reg)) in
  let metrics = Option.get (J.to_list (Option.get (J.member "metrics" j))) in
  let value_of name =
    List.find_map
      (fun m ->
        if J.member "name" m = Some (J.Str name) then J.to_int (Option.get (J.member "value" m))
        else None)
      metrics
  in
  (* round-trip matches the machine and the text report's cycle count *)
  Tu.check_int "sim.cycles round-trips" r.Core.Toolchain.cycles
    (Option.get (value_of "sim.cycles"));
  let text = Xmtsim.Stats.to_string r.Core.Toolchain.stats in
  let expected_line = Printf.sprintf "cycles:            %d" r.Core.Toolchain.cycles in
  Tu.check_bool "text --stats agrees" true
    (List.exists
       (fun l -> String.trim l = expected_line)
       (String.split_on_char '\n' text));
  Tu.check_bool "icn packets counted" true
    (Option.get (value_of "sim.icn.packets") > 0)

let latency_histograms_e2e () =
  (* the memory-request lifecycle shows up as per-(cluster, module)
     latency histograms with percentile estimates in the v2 export *)
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 3) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let r = Core.Toolchain.run_cycle ~config:Xmtsim.Config.tiny compiled in
  let reg = M.create () in
  Xmtsim.Stats.export r.Core.Toolchain.stats reg;
  let j = J.of_string (J.to_string (M.to_json reg)) in
  let metrics = Option.get (J.to_list (Option.get (J.member "metrics" j))) in
  let lat =
    List.filter
      (fun m -> J.member "name" m = Some (J.Str "sim.mem.request_latency"))
      metrics
  in
  Tu.check_bool "has latency histograms" true (lat <> []);
  let labelled =
    List.filter
      (fun m ->
        match J.member "labels" m with
        | Some (J.Obj fields) ->
          List.mem_assoc "cluster" fields && List.mem_assoc "module" fields
        | _ -> false)
      lat
  in
  Tu.check_bool "per-(cluster,module) series" true (labelled <> []);
  (* every lifecycle stage has an aggregate series, and totals observed
     requests with sane percentile fields *)
  let stage_of m =
    match J.member "labels" m with
    | Some (J.Obj fields) -> (
      match List.assoc_opt "stage" fields with Some (J.Str s) -> Some s | _ -> None)
    | _ -> None
  in
  let stages = List.filter_map stage_of lat in
  List.iter
    (fun s -> Tu.check_bool ("stage " ^ s) true (List.mem s stages))
    [ "icn_wait"; "service_hit"; "reply"; "total" ];
  let total_agg =
    List.find
      (fun m ->
        stage_of m = Some "total"
        &&
        match J.member "labels" m with
        | Some (J.Obj fields) -> not (List.mem_assoc "cluster" fields)
        | _ -> false)
      lat
  in
  Tu.check_bool "total count > 0" true
    (match J.member "count" total_agg with Some (J.Int n) -> n > 0 | _ -> false);
  let num k =
    Option.get (J.to_float (Option.get (J.member k total_agg)))
  in
  Tu.check_bool "round trips take cycles" true (num "max" >= 1.0);
  Tu.check_bool "percentiles ordered" true
    (num "p50" <= num "p95" && num "p95" <= num "p99");
  Tu.check_bool "percentiles within range" true
    (num "p50" >= num "min" && num "p99" <= num "max")

let machine_trace_e2e () =
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 1) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.tiny compiled in
  let tr = T.create () in
  Xmtsim.Machine.attach_tracer m tr;
  let r = Xmtsim.Machine.run m in
  Tu.check_bool "halted" true r.Xmtsim.Machine.halted;
  Xmtsim.Machine.flush_tracer m;
  let events = trace_events_of_string (T.to_string tr) in
  check_trace_invariants "machine trace" events;
  let phs = List.filter_map (fun e -> J.to_str (Option.get (J.member "ph" e))) events in
  Tu.check_bool "has spawn B span" true (List.mem "B" phs);
  Tu.check_bool "has X spans" true (List.mem "X" phs);
  Tu.check_bool "has package instants" true (List.mem "i" phs)

let profiler_order_and_json () =
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 1) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.tiny compiled in
  let p = Xmtsim.Profiler.attach ~interval:50 m in
  let _ = Xmtsim.Machine.run m in
  let samples = Xmtsim.Plugin.samples_in_order p in
  Tu.check_bool "has samples" true (List.length samples >= 2);
  let cycles = List.map (fun s -> s.Xmtsim.Plugin.ps_cycle) samples in
  Tu.check_bool "oldest-first" true (List.sort compare cycles = cycles);
  (* JSON export agrees with the normalized order *)
  match Xmtsim.Plugin.profile_to_json p with
  | J.List objs ->
    let jcycles =
      List.map (fun o -> Option.get (J.to_int (Option.get (J.member "cycle" o)))) objs
    in
    Tu.check_bool "json same order" true (jcycles = cycles)
  | _ -> Alcotest.fail "profile_to_json not a list"

let trace_limit_detaches () =
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 1) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.tiny compiled in
  let buf = Buffer.create 256 in
  Xmtsim.Trace.attach
    ~filter:{ Xmtsim.Trace.all with Xmtsim.Trace.limit = 5 }
    m
    (Buffer.add_string buf);
  let _ = Xmtsim.Machine.run m in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Tu.check_int "exactly limit lines" 5 (List.length lines)

let trace_detach_then_reattach () =
  let memmap = Isa.Memmap.of_ints [ ("A", Array.make 32 1) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m = Core.Toolchain.machine ~config:Xmtsim.Config.tiny compiled in
  let limited = { Xmtsim.Trace.all with Xmtsim.Trace.limit = 5 } in
  let b_limited = Buffer.create 256 and b_full = Buffer.create 4096 in
  Xmtsim.Trace.attach ~filter:limited m (Buffer.add_string b_limited);
  Xmtsim.Trace.attach m (Buffer.add_string b_full);
  let count b =
    List.length
      (List.filter (fun l -> l <> "")
         (String.split_on_char '\n' (Buffer.contents b)))
  in
  (* first segment stops on a cycle budget, mid-run *)
  let r1 = Xmtsim.Machine.run ~max_cycles:40 m in
  Tu.check_bool "segment 1 incomplete" false r1.Xmtsim.Machine.halted;
  let full_seg1 = count b_full in
  (* a fresh limited trace attached between segments records from here *)
  let b_re = Buffer.create 256 in
  Xmtsim.Trace.attach ~filter:limited m (Buffer.add_string b_re);
  let r2 = Xmtsim.Machine.run m in
  Tu.check_bool "resumed to halt" true r2.Xmtsim.Machine.halted;
  (* the limit-detached trace stayed detached across the resume... *)
  Tu.check_int "limited trace capped" 5 (count b_limited);
  (* ...the unlimited one kept collecting... *)
  Tu.check_bool "unlimited grew in segment 2" true (count b_full > full_seg1);
  Tu.check_bool "unlimited outran the cap" true (count b_full > 5);
  (* ...and the re-attached one captured the second segment up to its
     own limit *)
  Tu.check_int "re-attached trace capped" 5 (count b_re)

let compiler_timings () =
  let out = Compiler.Driver.compile src in
  let names = List.map (fun pt -> pt.Compiler.Driver.pt_pass) out.Compiler.Driver.timings in
  List.iter
    (fun expected ->
      Tu.check_bool (expected ^ " timed") true (List.mem expected names))
    [ "frontend"; "outline"; "lower"; "opt"; "regalloc"; "codegen"; "postpass" ];
  List.iter
    (fun pt ->
      Tu.check_bool (pt.Compiler.Driver.pt_pass ^ " nonneg ms") true
        (pt.Compiler.Driver.pt_ms >= 0.0);
      Tu.check_bool (pt.Compiler.Driver.pt_pass ^ " sized") true
        (pt.Compiler.Driver.pt_size_after > 0))
    out.Compiler.Driver.timings;
  (* the table renders one line per pass + header + total *)
  let table = Compiler.Driver.timings_to_string out.Compiler.Driver.timings in
  Tu.check_int "table lines" (List.length out.Compiler.Driver.timings + 2)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' table)))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Tu.tc "roundtrip" json_roundtrip;
          Tu.tc "string escaping" json_string_escaping;
          Tu.tc "rejects garbage" json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Tu.tc "counters/gauges" registry_counters_gauges;
          Tu.tc "merge" registry_merge;
          Tu.tc "histogram bucketing" histogram_bucketing;
          Tu.tc "histogram percentiles" histogram_percentiles;
          Tu.tc "histogram edge cases" histogram_edges;
          Tu.tc "json export" registry_json;
        ] );
      ( "timeseries",
        [
          Tu.tc "ring window" timeseries_window;
          Tu.tc "window boundary edges" timeseries_window_edges;
          Tu.tc "json export" timeseries_json;
        ] );
      ( "bench gate",
        [
          Tu.tc "pass/fail" gate_pass_and_fail;
          Tu.tc "speedup floor (multi-core only)" gate_speedup_floor;
          Tu.tc "missing/new benches" gate_missing_and_new;
        ] );
      ("tracer", [ Tu.tc "golden chrome-trace" tracer_golden ]);
      ( "wiring",
        [
          Tu.tc "stats export e2e" stats_export_e2e;
          Tu.tc "latency histograms e2e" latency_histograms_e2e;
          Tu.tc "machine trace e2e" machine_trace_e2e;
          Tu.tc "profiler order + json" profiler_order_and_json;
          Tu.tc "trace limit detaches" trace_limit_detaches;
          Tu.tc "trace detach then re-attach" trace_detach_then_reattach;
          Tu.tc "compiler pass timings" compiler_timings;
        ] );
    ]
