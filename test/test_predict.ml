(** Prediction mode: the reuse-profile harvest (stack distances,
    co-miss detection, per-block mixes), the analytical model's sanity
    envelope, the calibration artifact round trip, the programmatic
    phase-sampling windows and the campaign/schema integration. *)

module R = Xmtsim.Reuseprofile
module M = Predict.Model
module Cal = Predict.Calibrate
module P = Xmtsim.Phase_sampling
module C = Xmtsim.Config
module T = Core.Toolchain
module J = Obs.Json

(* a serial-block load at word [w], same vTCU throughout *)
let load rp addr =
  R.on_access rp ~master:false ~ro:false ~nb:false ~kind:`Load ~addr

let hist ~stream ~gran snap =
  let hs = List.assoc stream snap.R.p_streams in
  List.find (fun h -> h.R.h_granularity_words = gran) hs

(* ---- the LRU stack tracker, driven through the public hooks ---- *)

let stack_distances_exact () =
  (* sample_period 1 => every eligible reuse is measured; one word per
     line => word addresses are line ids *)
  let rp = R.create ~granularities:[ 1 ] ~depth:64 ~sample_period:1 () in
  (* four first touches: words 0..3 *)
  List.iter (fun w -> load rp (w * 4)) [ 0; 1; 2; 3 ];
  (* word 0 is now LRU at stack position 4 *)
  load rp 0;
  (* and immediately again: position 1 *)
  load rp 0;
  let h = hist ~stream:"tcu_rw" ~gran:1 (R.snapshot rp) in
  Tu.check_int "accesses" 6 h.R.h_accesses;
  Tu.check_int "first touches" 4 h.R.h_first_touch;
  Tu.check_int "measured reuses" 2 h.R.h_sampled;
  Tu.check_int "no co-misses (same vTCU)" 0 h.R.h_comiss;
  Tu.check_int "distance 1" 1 h.R.h_buckets.(0);
  (* distance 4 lands in the (2,4] bucket *)
  Tu.check_int "distance 4" 1 h.R.h_buckets.(2);
  Tu.check_int "nothing beyond depth" 0 h.R.h_beyond

let comiss_inside_window_only () =
  let rp =
    R.create ~granularities:[ 1 ] ~depth:64 ~sample_period:1 ~streams:4
      ~window:4 ()
  in
  R.enter_spawn rp ~pc:7 ~threads:3;
  (* thread on vTCU 0 installs the line *)
  R.on_thread rp;
  load rp 0;
  (* a sibling on vTCU 1 reuses it one access after the fill: on the
     real machine it parks on the in-flight fill => co-miss *)
  R.on_thread rp;
  load rp 0;
  (* push the line past the fill window with unrelated first touches *)
  List.iter (fun w -> load rp (w * 4)) [ 10; 11; 12; 13; 14; 15 ];
  (* a third sibling reuses it long after the fill: the line is
     resident by now, so this is an eligible (measured) reuse *)
  R.on_thread rp;
  load rp 0;
  let h = hist ~stream:"tcu_rw" ~gran:1 (R.snapshot rp) in
  Tu.check_int "one co-miss" 1 h.R.h_comiss;
  Tu.check_int "late cross-vTCU reuse measured" 1 h.R.h_sampled;
  Tu.check_int "first touches" 7 h.R.h_first_touch

let line_sampling_validated () =
  Tu.check_bool "line_sampling must be a power of two" true
    (match R.create ~line_sampling:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* sampled tracker stays unbiased in ratio: with rate 2 roughly half
     the distinct lines are tracked *)
  let rp = R.create ~granularities:[ 1 ] ~sample_period:1 ~line_sampling:2 () in
  for w = 0 to 1023 do
    load rp (w * 4)
  done;
  let h = hist ~stream:"tcu_rw" ~gran:1 (R.snapshot rp) in
  Tu.check_int "sampling rate recorded" 2 h.R.h_line_sampling;
  Tu.check_bool "about half the lines tracked" true
    (h.R.h_first_touch > 300 && h.R.h_first_touch < 700)

(* ---- a real kernel through Functional_mode.run ~profile ---- *)

let kernel_harvest () =
  let compiled = T.compile (Core.Kernels.vecadd ~n:256) in
  let rp = R.create () in
  ignore (Xmtsim.Functional_mode.run ~profile:rp compiled.T.image);
  let snap = R.snapshot rp in
  Tu.check_bool "instructions counted" true (snap.R.p_instructions > 0);
  Tu.check_bool "spawned" true (snap.R.p_spawns >= 1);
  (match snap.R.p_blocks with
  | serial :: rest ->
    Tu.check_int "serial block first" (-1) serial.R.pc;
    Tu.check_bool "has a parallel block" true (rest <> []);
    let par = List.hd rest in
    Tu.check_int "256 virtual threads" 256 par.R.threads;
    Tu.check_bool "parallel loads" true (par.R.loads > 0);
    Tu.check_bool "parallel stores" true (par.R.stores > 0)
  | [] -> Alcotest.fail "no blocks harvested");
  let h = hist ~stream:"tcu_rw" ~gran:1 snap in
  Tu.check_bool "compulsory misses seen" true (h.R.h_first_touch > 0);
  Tu.check_bool "tagged xmt.reuseprofile.v1" true
    (J.member "schema" (R.to_json snap) = Some (J.Str "xmt.reuseprofile.v1"))

(* ---- the analytical model's sanity envelope ---- *)

let harvest src =
  let compiled = T.compile src in
  let rp = R.create () in
  ignore (Xmtsim.Functional_mode.run ~profile:rp compiled.T.image);
  R.snapshot rp

let prediction_envelope () =
  let snap = harvest (Core.Kernels.par_mem ~threads:128 ~iters:8 ~n:4096) in
  let pred = M.predict ~config:C.fpga64 snap in
  Tu.check_bool "positive prediction" true (pred.M.predicted_cycles > 0);
  Tu.check_bool "error bars bracket" true
    (pred.M.lo <= pred.M.predicted_cycles
    && pred.M.predicted_cycles <= pred.M.hi);
  List.iter
    (fun (name, r) ->
      Tu.check_bool (name ^ " is a rate") true (r >= 0.0 && r <= 1.0))
    [
      ("hit_shared", pred.M.hit_shared);
      ("hit_ro", pred.M.hit_ro);
      ("hit_master", pred.M.hit_master);
    ];
  Tu.check_bool "contention inflates" true (pred.M.contention >= 1.0);
  let x = pred.M.components in
  List.iter
    (fun (name, v) ->
      Tu.check_bool (name ^ " nonnegative") true (v >= 0.0))
    [
      ("x_exec", x.M.x_exec);
      ("x_mem", x.M.x_mem);
      ("x_spawn", x.M.x_spawn);
      ("x_serial", x.M.x_serial);
    ]

let smaller_cache_predicts_slower () =
  (* the profile is config-independent: harvest once, evaluate two
     design points.  Shrinking the shared cache can only lose hits. *)
  let snap = harvest (Core.Kernels.par_mem ~threads:128 ~iters:8 ~n:4096) in
  let at cache_lines =
    M.predict ~config:{ C.fpga64 with C.cache_lines } snap
  in
  let small = at 8 and large = at 4096 in
  Tu.check_bool "small cache hits less" true
    (small.M.hit_shared <= large.M.hit_shared);
  Tu.check_bool "small cache predicted slower" true
    (small.M.predicted_cycles >= large.M.predicted_cycles)

(* ---- the xmt.calibration.v1 artifact ---- *)

let close name a b =
  Tu.check_bool name true (abs_float (a -. b) < 1e-6)

let calibration_roundtrip () =
  let snap = harvest (Core.Kernels.vecadd ~n:512) in
  let actual = (T.run_cycle ~config:C.fpga64 (T.compile (Core.Kernels.vecadd ~n:512))).T.cycles in
  let pt = Cal.point ~name:"vecadd_512" ~config:C.fpga64 snap ~actual_cycles:actual in
  let fitted = Cal.fit [ pt ] in
  let path = Filename.temp_file "xmtcal" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cal.save_file path fitted;
      let back = Cal.load_file path in
      close "c_exec survives" fitted.Cal.coeffs.M.c_exec back.Cal.coeffs.M.c_exec;
      close "c_mem survives" fitted.Cal.coeffs.M.c_mem back.Cal.coeffs.M.c_mem;
      close "c_spawn survives" fitted.Cal.coeffs.M.c_spawn back.Cal.coeffs.M.c_spawn;
      close "c_serial survives" fitted.Cal.coeffs.M.c_serial back.Cal.coeffs.M.c_serial;
      close "mae survives" fitted.Cal.mae_pct back.Cal.mae_pct;
      Tu.check_int "points survive" (List.length fitted.Cal.points)
        (List.length back.Cal.points))

let calibration_errors () =
  Tu.check_bool "empty corpus rejected" true
    (match Cal.fit [] with exception Cal.Calib_error _ -> true | _ -> false);
  Tu.check_bool "missing file rejected" true
    (match Cal.load_file "/nonexistent/calibration.json" with
    | exception Cal.Calib_error _ -> true
    | _ -> false);
  Tu.check_bool "wrong schema rejected" true
    (match Cal.of_json (J.Obj [ ("schema", J.Str "xmt.trace.v1") ]) with
    | exception Cal.Calib_error _ -> true
    | _ -> false);
  Tu.check_bool "missing schema rejected" true
    (match Cal.of_json (J.Obj []) with
    | exception Cal.Calib_error _ -> true
    | _ -> false)

(* ---- programmatic phase-sampling windows ---- *)

let window_boundaries () =
  let compiled = T.compile (Core.Kernels.ser_comp ~iters:200) in
  let total =
    (Xmtsim.Functional_mode.run compiled.T.image)
      .Xmtsim.Functional_mode.instructions
  in
  (* a window at instruction 0: the snapshot is the freshly loaded
     state, and the window must land *)
  let s =
    P.sample ~config:C.fpga64
      ~windows:[ { P.w_start = 0; w_instructions = 100 } ]
      compiled.T.image
  in
  Tu.check_int "window at 0 lands" 1 s.P.s_windows_landed;
  (match s.P.s_measured with
  | [ m ] ->
    Tu.check_int "starts at 0" 0 m.P.m_start;
    Tu.check_bool "measured a span" true (m.P.m_instructions > 0);
    Tu.check_bool "measured cycles" true (m.P.m_cycles > 0)
  | _ -> Alcotest.fail "expected exactly one measured window");
  Tu.check_int "accounts every instruction" total
    (List.fold_left (fun a m -> a + m.P.m_instructions) 0 s.P.s_measured
    + List.fold_left (fun a g -> a + g.P.g_instructions) 0 s.P.s_gaps);
  (* a window past the end of the run does not land; with nothing
     measured and no gap CPI, blending has no price for the gaps *)
  let beyond =
    P.sample ~config:C.fpga64
      ~windows:[ { P.w_start = total + 1000; w_instructions = 100 } ]
      compiled.T.image
  in
  Tu.check_int "window past the end" 0 beyond.P.s_windows_landed;
  Tu.check_bool "unmeasured run is all gap" true (beyond.P.s_gaps <> []);
  Tu.check_bool "blend without CPI rejected" true
    (match P.blend beyond with exception P.Error _ -> true | _ -> false);
  Tu.check_bool "blend with explicit CPI works" true
    (P.blend ~gap_cpi:(fun _ -> 1.0) beyond > 0);
  Tu.check_bool "overlapping windows rejected" true
    (match
       P.sample
         ~windows:
           [
             { P.w_start = 0; w_instructions = 100 };
             { P.w_start = 50; w_instructions = 100 };
           ]
         compiled.T.image
     with
    | exception P.Error _ -> true
    | _ -> false)

(* ---- campaigns mixing predict and cycle jobs ---- *)

let mixed_specs () =
  List.concat_map
    (fun n ->
      [
        ( Printf.sprintf "cycle-%d" n,
          T.job ~name:(Printf.sprintf "cycle-%d" n) ~mode:T.Cycle
            ~config:C.tiny
            (Core.Kernels.vecadd ~n) );
        ( Printf.sprintf "predict-%d" n,
          T.job ~name:(Printf.sprintf "predict-%d" n) ~mode:T.Predict
            ~config:C.tiny
            (Core.Kernels.vecadd ~n) );
      ])
    [ 16; 24; 32 ]

let mixed_campaign_deterministic () =
  let specs = mixed_specs () in
  let report rs = J.to_string (Campaign.report_to_json ~host:false rs) in
  let serial = Campaign.run ~jobs:1 specs in
  let parallel = Campaign.run ~jobs:3 specs in
  Tu.check_int "all ok" (List.length specs) (Campaign.ok_count serial);
  Tu.check_string "serial and parallel byte-identical" (report serial)
    (report parallel);
  (* every predict job carries an xmt.predict.v1 report; cycle jobs
     carry none *)
  Array.iter
    (fun r ->
      match r.Campaign.r_outcome with
      | Ok run ->
        let is_predict =
          String.length r.Campaign.r_name >= 7
          && String.sub r.Campaign.r_name 0 7 = "predict"
        in
        Tu.check_bool (r.Campaign.r_name ^ " predict report") is_predict
          (match run.T.predict with
          | Some j -> J.member "schema" j = Some (J.Str "xmt.predict.v1")
          | None -> false)
      | Error _ -> Alcotest.fail (r.Campaign.r_name ^ " failed"))
    serial

let missing_calibration_isolated () =
  let specs =
    [
      ("ok-cycle", T.job ~name:"ok-cycle" ~mode:T.Cycle ~config:C.tiny
         (Core.Kernels.vecadd ~n:16));
      ( "bad-predict",
        T.job ~name:"bad-predict" ~mode:T.Predict ~config:C.tiny
          ~calibration:"/nonexistent/calibration.json"
          (Core.Kernels.vecadd ~n:16) );
      ("ok-predict", T.job ~name:"ok-predict" ~mode:T.Predict ~config:C.tiny
         (Core.Kernels.vecadd ~n:16));
    ]
  in
  let rs = Campaign.run ~jobs:2 specs in
  Tu.check_int "two jobs survive" 2 (Campaign.ok_count rs);
  Tu.check_bool "cycle job ok" true (Result.is_ok rs.(0).Campaign.r_outcome);
  Tu.check_bool "predict job ok" true (Result.is_ok rs.(2).Campaign.r_outcome);
  match rs.(1).Campaign.r_outcome with
  | Error f ->
    Tu.check_bool "failure names the artifact" true
      (let hay = f.Campaign.f_exn in
       let needle = "calibration" in
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0)
  | Ok _ -> Alcotest.fail "missing calibration must fail the job"

(* ---- the schema registry rows ---- *)

let registry_rows () =
  List.iter
    (fun (kind, schema) ->
      Tu.check_bool (kind ^ " is an export kind") true
        (Obs.Schema.is_export_kind kind);
      Tu.check_bool (kind ^ " maps to " ^ schema) true
        (Obs.Schema.schema_of_kind kind = Some schema);
      Tu.check_bool (schema ^ " registered") true (Obs.Schema.is_schema schema))
    [ ("predict", "xmt.predict.v1"); ("reuseprofile", "xmt.reuseprofile.v1") ];
  Tu.check_bool "calibration schema registered" true
    (Obs.Schema.is_schema "xmt.calibration.v1")

let () =
  Alcotest.run "predict"
    [
      ( "reuse profile",
        [
          Tu.tc "stack distances exact" stack_distances_exact;
          Tu.tc "co-miss window" comiss_inside_window_only;
          Tu.tc "line sampling" line_sampling_validated;
          Tu.tc "kernel harvest" kernel_harvest;
        ] );
      ( "model",
        [
          Tu.tc "prediction envelope" prediction_envelope;
          Tu.tc "smaller cache predicts slower" smaller_cache_predicts_slower;
        ] );
      ( "calibration",
        [
          Tu.tc "artifact round trip" calibration_roundtrip;
          Tu.tc "errors" calibration_errors;
        ] );
      ( "phase windows",
        [ Tu.tc "boundaries" window_boundaries ] );
      ( "campaign",
        [
          Tu.tc "mixed modes deterministic" mixed_campaign_deterministic;
          Tu.tc "missing calibration isolated" missing_calibration_isolated;
        ] );
      ( "schema registry", [ Tu.tc "rows" registry_rows ] );
    ]
