(** Tests for the cycle-accounting profiler: CPI-stack exactness, the
    determinism contract (attaching the profiler perturbs nothing), the
    compiler debug-map chain ([xmtcc -g] -> [.loc] -> image source map)
    and source-level attribution. *)

module P = Xmtsim.Profile

let vecadd_src =
  {|
int A[64];
int B[64];
int C[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) A[i] = i;
  for (i = 0; i < 64; i++) B[i] = 2 * i;
  spawn (0, 63) {
    C[$] = A[$] + B[$];
  }
  print_int(C[10]);
  return 0;
}
|}

let ps_src =
  {|
int sum;
int main() {
  sum = 0;
  spawn (0, 63) {
    int x;
    x = 1;
    ps(x, sum);
  }
  print_int(sum);
  return 0;
}
|}

let run_profiled ?(config = Xmtsim.Config.tiny) src =
  let compiled = Core.Toolchain.compile src in
  let m = Xmtsim.Machine.create ~config compiled.Core.Toolchain.image in
  let p = Xmtsim.Machine.attach_profile m in
  let r = Xmtsim.Machine.run m in
  let rp = Option.get (Xmtsim.Machine.profile_report m) in
  (r, m, p, rp)

(* Every per-TCU stack (buckets + idle) must sum exactly to the run's
   grid ticks, with idle never negative — the exactness contract. *)
let stacks_sum_exactly () =
  let _, _, _, rp = run_profiled vecadd_src in
  Tu.check_bool "positive span" true (rp.P.rp_total > 0);
  Array.iteri
    (fun i row ->
      let s = Array.fold_left ( + ) 0 row.P.r_buckets in
      Tu.check_bool (Printf.sprintf "tcu %d idle >= 0" i) true (row.P.r_idle >= 0);
      Tu.check_int (Printf.sprintf "tcu %d sums" i) rp.P.rp_total
        (s + row.P.r_idle))
    rp.P.rp_tcus;
  (* clusters and aggregate are consistent sums of their TCUs *)
  let n_tcus = Array.length rp.P.rp_tcus in
  Array.iteri
    (fun c row ->
      let s = Array.fold_left ( + ) 0 row.P.r_buckets + row.P.r_idle in
      Tu.check_bool (Printf.sprintf "cluster %d multiple" c) true
        (s mod max 1 rp.P.rp_total = 0))
    rp.P.rp_clusters;
  let agg =
    Array.fold_left ( + ) 0 rp.P.rp_aggregate.P.r_buckets
    + rp.P.rp_aggregate.P.r_idle
  in
  Tu.check_int "aggregate covers TCUs + master" ((n_tcus + 1) * rp.P.rp_total) agg;
  (* the parallel kernel did real work in the memory buckets *)
  let b name =
    rp.P.rp_aggregate.P.r_buckets.(P.bucket_index name)
  in
  Tu.check_bool "compute cycles counted" true (b P.Compute > 0);
  Tu.check_bool "memory-system cycles counted" true
    (b P.Icn + b P.Cache_hit + b P.Dram + b P.Prefetch_covered > 0);
  Tu.check_bool "spawn overhead counted" true (b P.Spawn_join > 0)

(* ps-heavy kernel: serialization shows up in the fence/ps bucket *)
let ps_serialization_counted () =
  let r, _, _, rp = run_profiled ps_src in
  Tu.check_string "output" "64" r.Xmtsim.Machine.output;
  Tu.check_bool "fence/ps cycles counted" true
    (rp.P.rp_aggregate.P.r_buckets.(P.bucket_index P.Fence_ps) > 0)

(* The determinism contract: a profiled run is bit-identical to an
   unprofiled one on everything the machine reports. *)
let profiling_is_passive () =
  let run profiled =
    let compiled = Core.Toolchain.compile vecadd_src in
    let m =
      Xmtsim.Machine.create ~config:Xmtsim.Config.tiny
        compiled.Core.Toolchain.image
    in
    if profiled then ignore (Xmtsim.Machine.attach_profile m : P.t);
    let r = Xmtsim.Machine.run m in
    (r, Xmtsim.Machine.stats m, Xmtsim.Machine.events_processed m)
  in
  let r0, s0, e0 = run false in
  let r1, s1, e1 = run true in
  Tu.check_string "output identical" r0.Xmtsim.Machine.output
    r1.Xmtsim.Machine.output;
  Tu.check_int "cycles identical" r0.Xmtsim.Machine.cycles
    r1.Xmtsim.Machine.cycles;
  Tu.check_bool "stats identical" true (s0 = s1);
  Tu.check_int "host events identical (gating untouched)" e0 e1

(* xmtcc -g markers survive the whole pipeline into the image map, and
   at least 95% of non-idle cycles land on a concrete source location. *)
let source_attribution () =
  let _, _, _, rp = run_profiled vecadd_src in
  Tu.check_bool "image has debug info" true rp.P.rp_has_debug;
  Tu.check_bool "at least 95% attributed" true (P.attribution_rate rp >= 0.95);
  (* the spawn body dominates; it was outlined, and the map survives the
     outlining (the hottest attributed function is the outlined body) *)
  (match rp.P.rp_attr.P.a_by_func with
  | (fn, _) :: _ ->
    Tu.check_bool "hot function is the outlined spawn body" true
      (String.length fn >= 6 && String.sub fn 0 6 = "__outl")
  | [] -> Alcotest.fail "no attributed functions");
  Tu.check_bool "some line-level rows" true (rp.P.rp_attr.P.a_by_line <> []);
  Tu.check_bool "attribution never exceeds non-idle" true
    (rp.P.rp_attr.P.a_attributed <= rp.P.rp_attr.P.a_nonidle)

(* An image resolved from loc-free assembly reports no debug info and
   renders the hint instead of an empty table. *)
let no_debug_info_path () =
  let compiled = Core.Toolchain.compile vecadd_src in
  let stripped =
    Isa.Asm.print
      (Isa.Program.strip_locs compiled.Core.Toolchain.cc.Compiler.Driver.program)
  in
  let img = Isa.Program.resolve (Isa.Asm.parse stripped) in
  let m = Xmtsim.Machine.create ~config:Xmtsim.Config.tiny img in
  ignore (Xmtsim.Machine.attach_profile m : P.t);
  ignore (Xmtsim.Machine.run m);
  let rp = Option.get (Xmtsim.Machine.profile_report m) in
  Tu.check_bool "no debug info" true (not rp.P.rp_has_debug);
  let txt = P.render rp in
  Tu.check_bool "render hints at -g" true
    (let needle = "xmtcc -g" in
     let n = String.length txt and k = String.length needle in
     let rec scan i = i + k <= n && (String.sub txt i k = needle || scan (i + 1)) in
     scan 0)

(* xmt.profile.v1 export: schema tag, bucket sums and attribution rate
   survive a JSON round-trip. *)
let profile_json_roundtrip () =
  let _, _, _, rp = run_profiled vecadd_src in
  let j = Obs.Json.of_string (Obs.Json.to_string (P.to_json rp)) in
  Tu.check_bool "schema" true
    (Obs.Json.member "schema" j = Some (Obs.Json.Str "xmt.profile.v1"));
  Tu.check_bool "total ticks" true
    (Obs.Json.member "total_ticks" j = Some (Obs.Json.Int rp.P.rp_total));
  (match Obs.Json.member "aggregate" j with
  | Some (Obs.Json.Obj fields) ->
    let v k = match List.assoc_opt k fields with Some (Obs.Json.Int n) -> n | _ -> -1 in
    Array.iteri
      (fun i name ->
        Tu.check_int ("aggregate " ^ name) rp.P.rp_aggregate.P.r_buckets.(i)
          (v name))
      P.bucket_names;
    Tu.check_int "aggregate idle" rp.P.rp_aggregate.P.r_idle (v "idle")
  | _ -> Alcotest.fail "no aggregate object");
  match Obs.Json.member "attribution" j with
  | Some attr ->
    Tu.check_bool "has_debug_info" true
      (Obs.Json.member "has_debug_info" attr = Some (Obs.Json.Bool true))
  | None -> Alcotest.fail "no attribution object"

(* .loc assembly round-trip: print-with-locs -> parse preserves markers *)
let loc_asm_roundtrip () =
  let compiled = Core.Toolchain.compile vecadd_src in
  let prog = compiled.Core.Toolchain.cc.Compiler.Driver.program in
  let count p =
    List.length
      (List.filter
         (function Isa.Program.Loc _ -> true | _ -> false)
         p.Isa.Program.text)
  in
  let n = count prog in
  Tu.check_bool "program carries locs" true (n > 0);
  let reparsed = Isa.Asm.parse (Isa.Asm.print prog) in
  Tu.check_int "locs survive print/parse" n (count reparsed);
  Tu.check_int "strip removes all" 0 (count (Isa.Program.strip_locs prog));
  (* the image's pc-indexed map is populated and in range *)
  let img = Isa.Program.resolve prog in
  Tu.check_int "map covers every pc"
    (Array.length img.Isa.Program.instrs)
    (Array.length img.Isa.Program.locs);
  Tu.check_bool "some pcs attributed" true
    (Array.exists Option.is_some img.Isa.Program.locs)

(* The toolchain/campaign surface: run_cycle ~profile fills run.profile,
   and the campaign report embeds per-job and merged profiles. *)
let toolchain_and_campaign_surface () =
  let compiled = Core.Toolchain.compile vecadd_src in
  let r =
    Core.Toolchain.run_cycle ~config:Xmtsim.Config.tiny ~profile:true compiled
  in
  Tu.check_bool "run.profile filled" true (r.Core.Toolchain.profile <> None);
  let r0 = Core.Toolchain.run_cycle ~config:Xmtsim.Config.tiny compiled in
  Tu.check_bool "unprofiled run has none" true (r0.Core.Toolchain.profile = None);
  Tu.check_int "profiling changed nothing" r0.Core.Toolchain.cycles
    r.Core.Toolchain.cycles;
  let job =
    Core.Toolchain.job ~name:"p" ~config:Xmtsim.Config.tiny ~profile:true
      vecadd_src
  in
  let results = Campaign.run ~jobs:1 [ ("p", job); ("q", job) ] in
  (match Campaign.merged_profile_json results with
  | Some j ->
    Tu.check_bool "merged schema" true
      (Obs.Json.member "schema" j = Some (Obs.Json.Str "xmt.profile.v1"));
    Tu.check_bool "merged job count" true
      (Obs.Json.member "merged_jobs" j = Some (Obs.Json.Int 2))
  | None -> Alcotest.fail "no merged profile");
  match Obs.Json.member "profile" (Campaign.report_to_json ~host:false results) with
  | Some _ -> ()
  | None -> Alcotest.fail "campaign report lacks merged profile"

(* The interval profiler (one event source, two views): its windowed
   compute/memwait deltas sum to the CPI stack's totals. *)
let interval_view_consistent () =
  let compiled = Core.Toolchain.compile vecadd_src in
  let m =
    Xmtsim.Machine.create ~config:Xmtsim.Config.tiny
      compiled.Core.Toolchain.image
  in
  let pl = Xmtsim.Profiler.attach ~interval:50 m in
  ignore (Xmtsim.Machine.run m);
  let p = Option.get (Xmtsim.Machine.profile m) in
  let samples = Xmtsim.Plugin.samples_in_order pl in
  Tu.check_bool "samples collected" true (List.length samples >= 2);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 samples in
  (* windows partition the counters, so the deltas telescope; the last
     partial window may be missing, so the sums are lower bounds *)
  Tu.check_bool "compute view consistent" true
    (sum (fun s -> s.Xmtsim.Plugin.ps_compute)
     <= P.compute_cycles p - P.mem_ops p);
  Tu.check_bool "memwait view consistent" true
    (sum (fun s -> s.Xmtsim.Plugin.ps_memwait) <= P.memwait_cycles p);
  Tu.check_bool "memory ops view consistent" true
    (sum (fun s -> s.Xmtsim.Plugin.ps_memory) <= P.mem_ops p);
  Tu.check_bool "windows nonnegative" true
    (List.for_all
       (fun s ->
         s.Xmtsim.Plugin.ps_compute >= 0
         && s.Xmtsim.Plugin.ps_memory >= 0
         && s.Xmtsim.Plugin.ps_memwait >= 0)
       samples)

let () =
  Alcotest.run "profile"
    [
      ( "cpi stacks",
        [
          Tu.tc "per-TCU sums exact" stacks_sum_exactly;
          Tu.tc "ps serialization counted" ps_serialization_counted;
          Tu.tc "profiling is passive" profiling_is_passive;
        ] );
      ( "attribution",
        [
          Tu.tc "source attribution >= 95%" source_attribution;
          Tu.tc "no-debug-info path" no_debug_info_path;
          Tu.tc "loc asm roundtrip" loc_asm_roundtrip;
        ] );
      ( "surfaces",
        [
          Tu.tc "xmt.profile.v1 json" profile_json_roundtrip;
          Tu.tc "toolchain + campaign" toolchain_and_campaign_surface;
          Tu.tc "interval view consistent" interval_view_consistent;
        ] );
    ]
