(** The race & memory-model checker: static spawn-block analysis,
    fence-placement diffing and the dynamic shadow-memory detector. *)

open Tu

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

(* resolve fixtures relative to this test executable so the tests work
   both under `dune runtest` (cwd = _build/default/test) and `dune exec`
   (cwd = project root) *)
let fixture name =
  read_file
    (Filename.concat
       (Filename.dirname Sys.executable_name)
       (Filename.concat Filename.parent_dir_name
          (Filename.concat "examples" name)))

let analyze ?options src =
  let compiled = Core.Toolchain.compile ?options src in
  Racecheck.analyze compiled.Core.Toolchain.cc

let codes findings = List.map (fun f -> f.Racecheck.Diag.code) findings
let has_code c findings = List.mem c (codes findings)

let no_fences =
  { Compiler.Driver.default_options with Compiler.Driver.fences = false }

(* ------------------------------------------------------------------ *)
(* static layer: true positives on the known-racy fixtures            *)

let static_accumulator () =
  let findings = analyze (fixture "racy_accumulator.xmtc") in
  check_bool "read-write flagged" true
    (has_code "unmediated-read-write" findings);
  check_bool "write-write flagged" true
    (has_code "unmediated-write-write" findings);
  check_int "both are errors" 2 (Racecheck.Diag.error_count findings);
  List.iter
    (fun f -> check_bool "evidence names sum" true (f.Racecheck.Diag.vars = [ "sum" ]))
    findings

let static_overlap () =
  let findings = analyze (fixture "racy_overlap.xmtc") in
  check_bool "read-write flagged" true
    (has_code "unmediated-read-write" findings);
  (* A[$] = A[$+1] + 1: a thread writes only its own element, so there
     is no write-write pair — precision, not just recall *)
  check_bool "no write-write" false (has_code "unmediated-write-write" findings);
  check_int "one error" 1 (Racecheck.Diag.error_count findings)

(* true negatives: the clean corpus produces zero findings *)
let static_clean () =
  List.iter
    (fun (name, src) ->
      check_int (name ^ " is clean") 0 (List.length (analyze src)))
    [
      ("vecadd fixture", fixture "clean_vecadd.xmtc");
      ("compaction fixture", fixture "clean_compaction.xmtc");
      ("vecadd kernel", Core.Kernels.vecadd ~n:64);
      ("compaction kernel", Core.Kernels.compaction ~n:64);
      ("reduce_psm kernel", Core.Kernels.reduce_psm ~n:64);
    ]

(* the publication fixture: mediated by psm, but the $/2 pair index is
   beyond the affine analysis, so the static layer warns (never errors) *)
let static_publication_warns () =
  let findings = analyze (fixture "publication.xmtc") in
  check_int "no errors" 0 (Racecheck.Diag.error_count findings)

(* Fig. 8: without outlining, spawn-block writes to a master-broadcast
   value are lost at join — a broadcast-write error *)
let static_broadcast () =
  let src = Core.Kernels.fig8_found ~n:64 in
  let raw =
    analyze
      ~options:
        { Compiler.Driver.default_options with Compiler.Driver.outline = false }
      src
  in
  check_bool "no-outline flags broadcast write" true
    (has_code "broadcast-write" raw);
  check_bool "outlining repairs it" false
    (has_code "broadcast-write" (analyze src))

(* fence-placement diff (Fig. 7): the compiler's own output is
   consistent with the Memfence discipline; compiled with fences off,
   the checker reports the missing fences before prefix-sums *)
let static_fence_diff () =
  let src = Core.Kernels.compaction ~n:64 in
  check_bool "fenced compile has no fence findings" false
    (has_code "missing-fence" (analyze src));
  check_bool "fences off -> missing-fence" true
    (has_code "missing-fence" (analyze ~options:no_fences src))

(* findings are rendered and ordered deterministically *)
let static_deterministic () =
  let render fs = String.concat "\n" (List.map Racecheck.Diag.render fs) in
  let a = render (analyze (fixture "racy_accumulator.xmtc")) in
  let b = render (analyze (fixture "racy_accumulator.xmtc")) in
  check_string "same source, same report" a b

(* ------------------------------------------------------------------ *)
(* dynamic layer                                                      *)

let run_with_rc ?options ?(config = Xmtsim.Config.fpga64) ?(gating = true) src =
  let compiled = Core.Toolchain.compile ?options src in
  let m = Xmtsim.Machine.create ~config compiled.Core.Toolchain.image in
  Xmtsim.Machine.set_gating m gating;
  let rd = Xmtsim.Machine.attach_racecheck m in
  let r = Xmtsim.Machine.run m in
  (r, rd, compiled)

let seeded seed =
  Xmtsim.Config.with_overrides Xmtsim.Config.fpga64
    [ Printf.sprintf "seed=%d" seed; "icn_jitter=4" ]

let dynamic_accumulator () =
  let _, rd, compiled = run_with_rc (fixture "racy_accumulator.xmtc") in
  let sum_addr = Isa.Program.address_of compiled.Core.Toolchain.image "sum" in
  let races = Xmtsim.Racedetect.races rd in
  check_bool "races detected" true (races <> []);
  List.iter
    (fun (rc : Xmtsim.Racedetect.race) ->
      check_int "race is on sum" sum_addr rc.Xmtsim.Racedetect.r_addr;
      check_int "inside the spawn epoch" 1 rc.Xmtsim.Racedetect.r_epoch)
    races;
  check_bool "kinds cover read-write and write-write" true
    (List.exists (fun r -> r.Xmtsim.Racedetect.r_kind = "read-write") races
    && List.exists (fun r -> r.Xmtsim.Racedetect.r_kind = "write-write") races)

(* static evidence (variable A) and dynamic evidence (addresses) agree *)
let dynamic_overlap_matches_static () =
  let src = fixture "racy_overlap.xmtc" in
  let _, rd, compiled = run_with_rc src in
  let base = Isa.Program.address_of compiled.Core.Toolchain.image "A" in
  let races = Xmtsim.Racedetect.races rd in
  check_bool "races detected" true (races <> []);
  List.iter
    (fun (rc : Xmtsim.Racedetect.race) ->
      check_bool "address falls inside A" true
        (rc.Xmtsim.Racedetect.r_addr >= base
        && rc.Xmtsim.Racedetect.r_addr < base + (4 * 65));
      check_int "same epoch as the spawn" 1 rc.Xmtsim.Racedetect.r_epoch)
    races;
  let static = analyze src in
  check_bool "static evidence names A" true
    (List.exists (fun f -> f.Racecheck.Diag.vars = [ "A" ]) static)

(* clock gating never changes the report *)
let dynamic_gating_invariant () =
  let report rd = Obs.Json.to_string (Xmtsim.Racedetect.to_json rd) in
  let _, on, _ = run_with_rc ~gating:true (fixture "racy_overlap.xmtc") in
  let _, off, _ = run_with_rc ~gating:false (fixture "racy_overlap.xmtc") in
  check_string "gated = ungated" (report on) (report off)

(* clean program: zero dynamic findings *)
let dynamic_clean () =
  let _, rd, _ = run_with_rc (Core.Kernels.compaction ~n:64) in
  check_int "compaction is race-free" 0 (Xmtsim.Racedetect.race_count rd);
  check_bool "but accesses were observed" true (Xmtsim.Racedetect.events rd > 0)

(* the headline flip: the publication program is dynamically race-free
   as compiled, and racy when the Fig. 7 fences are disabled *)
let dynamic_fence_flip () =
  let pub = Core.Kernels.publication ~n:128 in
  List.iter
    (fun seed ->
      let _, fenced, _ = run_with_rc ~config:(seeded seed) pub in
      check_int
        (Printf.sprintf "fenced publication clean (seed %d)" seed)
        0
        (Xmtsim.Racedetect.race_count fenced))
    [ 1; 2; 3 ];
  let r, unfenced, _ =
    run_with_rc ~options:no_fences ~config:(seeded 1) pub
  in
  ignore r;
  check_bool "no fences -> detected" true
    (Xmtsim.Racedetect.race_count unfenced > 0)

(* detaching restores the zero-overhead configuration *)
let dynamic_detach () =
  let compiled = Core.Toolchain.compile (Core.Kernels.vecadd ~n:16) in
  let m =
    Xmtsim.Machine.create ~config:Xmtsim.Config.tiny
      compiled.Core.Toolchain.image
  in
  let rd = Xmtsim.Machine.attach_racecheck m in
  check_bool "attach is idempotent" true (Xmtsim.Machine.attach_racecheck m == rd);
  check_bool "accessor sees it" true (Xmtsim.Machine.racecheck m = Some rd);
  Xmtsim.Machine.detach_racecheck m;
  check_bool "detached" true (Xmtsim.Machine.racecheck m = None);
  let r = Xmtsim.Machine.run m in
  check_bool "run unaffected" true r.Xmtsim.Machine.halted;
  check_int "detector saw nothing" 0 (Xmtsim.Racedetect.events rd)

(* every memory-touching package event carries (address, tcu, pc) *)
let package_events_carry_pc () =
  let compiled = Core.Toolchain.compile (Core.Kernels.vecadd ~n:16) in
  let m =
    Xmtsim.Machine.create ~config:Xmtsim.Config.tiny
      compiled.Core.Toolchain.image
  in
  let attributed = ref 0 and total = ref 0 in
  Xmtsim.Machine.on_package m (fun ev ->
      incr total;
      check_bool "pc is -1 or a real pc" true (ev.Xmtsim.Machine.pe_pc >= -1);
      if ev.Xmtsim.Machine.pe_pc >= 0 then incr attributed);
  ignore (Xmtsim.Machine.run m);
  check_bool "events flowed" true (!total > 0);
  check_bool "most events attribute a pc" true (!attributed > 0)

(* ------------------------------------------------------------------ *)
(* toolchain + campaign surfaces                                      *)

let toolchain_report () =
  let compiled = Core.Toolchain.compile (fixture "racy_accumulator.xmtc") in
  let r = Core.Toolchain.run_cycle ~racecheck:true compiled in
  (match r.Core.Toolchain.races with
  | Some (Obs.Json.Obj fields) ->
    check_bool "schema tag" true
      (List.assoc_opt "schema" fields = Some (Obs.Json.Str "xmt.races.v1"));
    (match List.assoc_opt "dynamic" fields with
    | Some (Obs.Json.Obj dyn) ->
      check_bool "dynamic races listed" true
        (match List.assoc_opt "races" dyn with
        | Some (Obs.Json.List (_ :: _)) -> true
        | _ -> false)
    | _ -> Alcotest.fail "dynamic member missing")
  | _ -> Alcotest.fail "races report missing");
  let off = Core.Toolchain.run_cycle compiled in
  check_bool "off by default" true (off.Core.Toolchain.races = None);
  let f = Core.Toolchain.run_functional ~racecheck:true compiled in
  match f.Core.Toolchain.races with
  | Some (Obs.Json.Obj fields) ->
    check_bool "functional report is static-only" true
      (List.assoc_opt "dynamic" fields = Some Obs.Json.Null)
  | _ -> Alcotest.fail "functional races report missing"

(* the dynamic report is identical from serial and parallel campaigns *)
let campaign_deterministic () =
  let jobs =
    [
      ( "acc",
        Core.Toolchain.job ~name:"acc" ~racecheck:true
          (fixture "racy_accumulator.xmtc") );
      ( "overlap",
        Core.Toolchain.job ~name:"overlap" ~racecheck:true
          (fixture "racy_overlap.xmtc") );
      ( "pub-nofence",
        Core.Toolchain.job ~name:"pub-nofence" ~racecheck:true
          ~options:no_fences ~config:(seeded 1)
          (Core.Kernels.publication ~n:64) );
      ( "clean",
        Core.Toolchain.job ~name:"clean" ~racecheck:true
          (Core.Kernels.vecadd ~n:32) );
    ]
  in
  let render results =
    Obs.Json.to_string (Campaign.report_to_json ~host:false results)
  in
  let serial = render (Campaign.run ~jobs:1 jobs) in
  let parallel = render (Campaign.run ~jobs:2 jobs) in
  check_string "serial = parallel" serial parallel;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "reports carry races" true (contains serial "\"races\"")

let () =
  Alcotest.run "racecheck"
    [
      ( "static",
        [
          tc "accumulator flagged" static_accumulator;
          tc "overlap flagged" static_overlap;
          tc "clean corpus quiet" static_clean;
          tc "publication never errors" static_publication_warns;
          tc "broadcast write (Fig. 8)" static_broadcast;
          tc "fence diff (Fig. 7)" static_fence_diff;
          tc "deterministic report" static_deterministic;
        ] );
      ( "dynamic",
        [
          tc "accumulator races on sum" dynamic_accumulator;
          tc "overlap matches static evidence" dynamic_overlap_matches_static;
          tc "gating-invariant report" dynamic_gating_invariant;
          tc "clean program quiet" dynamic_clean;
          tc "fence flip on publication" dynamic_fence_flip;
          tc "detach restores no-overhead" dynamic_detach;
          tc "package events carry pc" package_events_carry_pc;
        ] );
      ( "surfaces",
        [
          tc "toolchain report" toolchain_report;
          tc "campaign determinism" campaign_deterministic;
        ] );
    ]
