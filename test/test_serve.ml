(** The campaign server: wire protocol, byte-identity of served streams
    with direct {!Campaign.run}, fair multiplexing, quota rejection,
    disconnect survival, and journal-backed kill-and-restart resume. *)

module J = Obs.Json

(* ---- fixtures ---- *)

let tmp_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)

let tmp_dir prefix =
  let d = tmp_name prefix in
  Unix.mkdir d 0o755;
  d

let job_json ?mode ?seed ~name n =
  J.Obj
    ([
       ("name", J.Str name);
       ("inline", J.Str (Core.Kernels.vecadd ~n));
     ]
    @ (match mode with Some m -> [ ("mode", J.Str m) ] | None -> [])
    @ match seed with Some s -> [ ("seed", J.Int s) ] | None -> [])

let spec_json ?exec jobs =
  J.Obj
    ([
       ("schema", J.Str "xmt.campaign.v1");
       ("defaults", J.Obj [ ("preset", J.Str "tiny") ]);
       ("jobs", J.List jobs);
     ]
    @ match exec with Some e -> [ ("exec", e) ] | None -> [])

(* a small mixed campaign: cycle + functional, distinct sizes/seeds *)
let mixed_jobs k =
  List.init k (fun i ->
      let n = 16 + (i mod 3) * 8 in
      if i mod 4 = 3 then
        job_json ~mode:"functional" ~name:(Printf.sprintf "f%d" i) n
      else job_json ~seed:i ~name:(Printf.sprintf "c%d" i) n)

(* the reference: a direct in-process run of the same spec, canonical *)
let direct_canonical spec =
  let req = Campaign.Request.of_json spec in
  let buf = Buffer.create 4096 in
  let s = Obs.Stream.create (Obs.Stream.buffer_sink buf) in
  let _ = Campaign.run_request ~stream:s req in
  Obs.Stream.close s;
  Obs.Stream.canonicalize_lines (Buffer.contents buf)

let canon_of_records records =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (J.to_string r);
      Buffer.add_char b '\n')
    records;
  Obs.Stream.canonicalize_lines (Buffer.contents b)

let with_server ?state_dir ?(workers = 2) ?(max_pending = 4096)
    ?(max_client = 1024) f =
  let cfg =
    {
      Serve.Server.socket_path = tmp_name "xmtserved";
      state_dir;
      workers = Some workers;
      max_pending_jobs = max_pending;
      max_client_jobs = max_client;
    }
  in
  let srv = Serve.Server.create cfg in
  Fun.protect ~finally:(fun () -> Serve.Server.stop srv) (fun () -> f cfg srv)

let submit_ok client spec =
  match Serve.Client.submit client spec with
  | Ok cid -> cid
  | Error frame -> Alcotest.failf "submit rejected: %s" (J.to_string frame)

let collect_stream client cid =
  let records = ref [] in
  let summary =
    Serve.Client.stream_until_done client ~cid ~on_record:(fun r ->
        records := r :: !records)
  in
  (List.rev !records, summary)

(* ---- protocol ---- *)

let protocol_frames () =
  let ok line =
    match Serve.Protocol.frame_of_line line with
    | Ok f -> f
    | Error m -> Alcotest.failf "parse %s: %s" line m
  in
  (match ok {|{"type":"campaign.submit","spec":{}}|} with
  | Serve.Protocol.Submit { cid = None; _ } -> ()
  | _ -> Alcotest.fail "submit without cid");
  (match ok {|{"type":"campaign.submit","cid":"x1","spec":{"jobs":[]}}|} with
  | Serve.Protocol.Submit { cid = Some "x1"; _ } -> ()
  | _ -> Alcotest.fail "submit with cid");
  (match
     ok {|{"type":"campaign.attach","cid":"x1","after":{"job":3,"jseq":1}}|}
   with
  | Serve.Protocol.Attach { cid = "x1"; after = Some (3, 1) } -> ()
  | _ -> Alcotest.fail "attach with ack");
  (match ok {|{"type":"ping"}|} with
  | Serve.Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  let rejects line =
    match Serve.Protocol.frame_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error: %s" line
  in
  rejects {|{"type":"campaign.submit"}|};
  rejects {|{"type":"campaign.attach"}|};
  rejects {|{"type":"warp"}|};
  rejects {|{"type":"campaign.submit","cid":"bad/../id","spec":{}}|};
  rejects "not json";
  Tu.check_bool "cid charset" false (Serve.Protocol.valid_cid "a b");
  Tu.check_bool "cid dotfile" false (Serve.Protocol.valid_cid ".hidden");
  Tu.check_bool "cid ok" true (Serve.Protocol.valid_cid "sweep_1.run-2")

(* ---- journal ---- *)

let journal_roundtrip () =
  let dir = tmp_dir "serve-journal" in
  let spec = spec_json (mixed_jobs 2) in
  let jn = Serve.Journal.start ~dir ~cid:"j1" ~spec in
  Serve.Journal.append jn
    (J.Obj [ ("type", J.Str "job.start"); ("job", J.Int 0); ("jseq", J.Int 0) ]);
  Serve.Journal.append jn
    (J.Obj
       [
         ("type", J.Str "job.done"); ("job", J.Int 0); ("jseq", J.Int 1);
         ("status", J.Str "ok");
       ]);
  Serve.Journal.close jn;
  (* simulate a kill -9 mid-line: append a truncated record *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Serve.Journal.path ~dir ~cid:"j1")
  in
  output_string oc {|{"type":"job.start","job":1,"js|};
  close_out oc;
  match Serve.Journal.recover ~dir with
  | [ r ] ->
    Tu.check_string "cid" "j1" r.Serve.Journal.rc_cid;
    Tu.check_string "spec survives verbatim" (J.to_string spec)
      (J.to_string r.Serve.Journal.rc_spec);
    Tu.check_int "truncated final line dropped" 2
      (List.length r.Serve.Journal.rc_records);
    Tu.check_bool "incomplete" false r.Serve.Journal.rc_complete
  | rs -> Alcotest.failf "recovered %d journals, expected 1" (List.length rs)

(* ---- served stream == direct run ---- *)

let served_matches_direct () =
  let spec = spec_json (mixed_jobs 6) in
  let reference = direct_canonical spec in
  with_server (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      (match J.member "schema" (Serve.Client.hello client) with
      | Some (J.Str s) -> Tu.check_string "hello schema" "xmt.serve.v1" s
      | _ -> Alcotest.fail "server.hello carries the schema");
      let cid = submit_ok client spec in
      let records, summary = collect_stream client cid in
      Tu.check_int "all jobs ok" 6 summary.Serve.Client.s_ok;
      Tu.check_int "none failed" 0 summary.Serve.Client.s_failed;
      Tu.check_string "served stream canonicalizes byte-identical" reference
        (canon_of_records records);
      Serve.Client.close client)

let two_campaigns_one_connection () =
  let spec_a = spec_json (mixed_jobs 4) in
  let spec_b = spec_json (List.rev (mixed_jobs 3)) in
  with_server (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      let cid_a = submit_ok client spec_a in
      let cid_b = submit_ok client spec_b in
      Tu.check_bool "distinct cids" true (cid_a <> cid_b);
      (* interleaved on the wire, demultiplexed by cid *)
      let records_b, sb = collect_stream client cid_b in
      let records_a, sa = collect_stream client cid_a in
      Tu.check_int "a ok" 4 sa.Serve.Client.s_ok;
      Tu.check_int "b ok" 3 sb.Serve.Client.s_ok;
      Tu.check_string "a matches direct" (direct_canonical spec_a)
        (canon_of_records records_a);
      Tu.check_string "b matches direct" (direct_canonical spec_b)
        (canon_of_records records_b);
      Serve.Client.close client)

(* ---- fairness ---- *)

let small_campaign_not_starved () =
  (* a big campaign is streaming; a small one submitted later must
     finish while the big one is still in flight (round-robin batches),
     not after it *)
  let big = spec_json (mixed_jobs 40) in
  let small = spec_json [ job_json ~name:"s0" 16; job_json ~name:"s1" 24 ] in
  with_server ~workers:2 (fun cfg srv ->
      let ca = Serve.Client.connect cfg.Serve.Server.socket_path in
      let cb = Serve.Client.connect cfg.Serve.Server.socket_path in
      let cid_big = submit_ok ca big in
      let cid_small = submit_ok cb small in
      let _, s_small = collect_stream cb cid_small in
      Tu.check_int "small done" 2 s_small.Serve.Client.s_ok;
      (match Serve.Server.campaign_state srv cid_big with
      | Some (_, _, complete) ->
        Tu.check_bool "big campaign still running when small finished" false
          complete
      | None -> Alcotest.fail "big campaign unknown");
      let records_big, s_big = collect_stream ca cid_big in
      Tu.check_int "big done" 40 s_big.Serve.Client.s_ok;
      Tu.check_string "big matches direct despite interleaving"
        (direct_canonical big)
        (canon_of_records records_big);
      Serve.Client.close ca;
      Serve.Client.close cb)

(* ---- quotas and admission ---- *)

let quota_rejections () =
  let spec6 = spec_json (mixed_jobs 6) in
  with_server ~max_client:4 (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      (match Serve.Client.submit client spec6 with
      | Error frame ->
        (match J.member "type" frame with
        | Some (J.Str t) -> Tu.check_string "typed frame" "server.overload" t
        | _ -> Alcotest.fail "overload frame has a type");
        (match J.member "scope" frame with
        | Some (J.Str s) -> Tu.check_string "client scope" "client" s
        | _ -> Alcotest.fail "overload frame has a scope");
        (match J.member "requested" frame with
        | Some (J.Int r) -> Tu.check_int "requested" 6 r
        | _ -> Alcotest.fail "overload frame reports the request size")
      | Ok _ -> Alcotest.fail "6 jobs over a 4-job quota must be rejected");
      (* the connection survives a rejection and can submit within quota *)
      let cid = submit_ok client (spec_json (mixed_jobs 3)) in
      let _, s = collect_stream client cid in
      Tu.check_int "small submit fine after rejection" 3 s.Serve.Client.s_ok;
      Serve.Client.close client);
  with_server ~max_pending:4 (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      match Serve.Client.submit client spec6 with
      | Error frame ->
        (match J.member "scope" frame with
        | Some (J.Str s) -> Tu.check_string "server scope" "server" s
        | _ -> Alcotest.fail "overload frame has a scope");
        Serve.Client.close client
      | Ok _ -> Alcotest.fail "server-wide admission cap must reject")

let duplicate_cid_rejected () =
  with_server (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      let spec = spec_json (mixed_jobs 2) in
      (match Serve.Client.submit client ~cid:"dup" spec with
      | Ok cid -> Tu.check_string "explicit cid honored" "dup" cid
      | Error f -> Alcotest.failf "first submit: %s" (J.to_string f));
      (match Serve.Client.submit client ~cid:"dup" spec with
      | Error frame -> (
        match J.member "type" frame with
        | Some (J.Str t) -> Tu.check_string "typed error" "server.error" t
        | _ -> Alcotest.fail "error frame has a type")
      | Ok _ -> Alcotest.fail "duplicate cid must be rejected");
      let _ = collect_stream client "dup" in
      Serve.Client.close client)

let bad_spec_is_server_error () =
  with_server (fun cfg _srv ->
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      (match
         Serve.Client.submit client (J.Obj [ ("schema", J.Str "xmt.campaign.v1") ])
       with
      | Error frame -> (
        match J.member "type" frame with
        | Some (J.Str t) -> Tu.check_string "typed error" "server.error" t
        | _ -> Alcotest.fail "error frame has a type")
      | Ok _ -> Alcotest.fail "spec without jobs must be rejected");
      Tu.check_bool "connection survives" true (Serve.Client.ping client = Ok ());
      Serve.Client.close client)

(* ---- disconnect and re-attach ---- *)

let disconnect_then_attach () =
  let dir = tmp_dir "serve-disc" in
  let spec = spec_json (mixed_jobs 5) in
  with_server ~state_dir:dir (fun cfg srv ->
      let c1 = Serve.Client.connect cfg.Serve.Server.socket_path in
      let cid = submit_ok c1 spec in
      (* vanish without reading a single job record *)
      Serve.Client.close c1;
      (* the jobs still complete, journaled *)
      Serve.Server.wait_idle srv;
      (match Serve.Server.campaign_state srv cid with
      | Some (completed, total, complete) ->
        Tu.check_int "all jobs completed server-side" total completed;
        Tu.check_bool "campaign closed" true complete
      | None -> Alcotest.fail "campaign lost");
      (* a later client re-streams the whole thing from the journal *)
      let c2 = Serve.Client.connect cfg.Serve.Server.socket_path in
      (match Serve.Client.attach c2 ~cid () with
      | Ok () -> ()
      | Error f -> Alcotest.failf "attach: %s" (J.to_string f));
      let records, summary = collect_stream c2 cid in
      Tu.check_int "replayed ok count" 5 summary.Serve.Client.s_ok;
      Tu.check_string "replay canonicalizes to the direct stream"
        (direct_canonical spec)
        (canon_of_records records);
      Serve.Client.close c2)

(* ---- restart and resume ---- *)

let job_key r =
  match
    ( Option.bind (J.member "job" r) J.to_int,
      Option.bind (J.member "jseq" r) J.to_int )
  with
  | Some j, Some s -> Some (j, s)
  | _ -> None

let restart_resumes_exactly_once () =
  let dir = tmp_dir "serve-resume" in
  let spec = spec_json (mixed_jobs 8) in
  let reference = direct_canonical spec in
  let sock1 = tmp_name "xmtserved-r1" in
  let cfg1 =
    {
      (Serve.Server.default_config ~socket_path:sock1) with
      state_dir = Some dir;
      workers = Some 2;
    }
  in
  let srv1 = Serve.Server.create cfg1 in
  let c1 = Serve.Client.connect sock1 in
  let cid = submit_ok c1 spec in
  (* read a prefix: stop after the second job.done *)
  let prefix = ref [] in
  let dones = ref 0 in
  while !dones < 2 do
    let r = Serve.Client.next_record c1 ~cid in
    prefix := r :: !prefix;
    match J.member "type" r with
    | Some (J.Str "job.done") -> incr dones
    | _ -> ()
  done;
  let prefix = List.rev !prefix in
  let last_ack =
    List.fold_left
      (fun acc r -> match job_key r with Some k -> Some k | None -> acc)
      None prefix
  in
  (* the server dies; whatever was sent-but-unread is lost to us *)
  Serve.Server.stop srv1;
  (try Serve.Client.close c1 with Serve.Client.Disconnected -> ());
  (* a new lifetime over the same state dir resumes the campaign *)
  let sock2 = tmp_name "xmtserved-r2" in
  let cfg2 = { cfg1 with socket_path = sock2 } in
  let srv2 = Serve.Server.create cfg2 in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop srv2)
    (fun () ->
      Serve.Server.wait_idle srv2;
      (match Serve.Server.campaign_state srv2 cid with
      | Some (completed, total, complete) ->
        Tu.check_int "resumed to completion" total completed;
        Tu.check_bool "complete" true complete
      | None -> Alcotest.fail "campaign not recovered");
      let c2 = Serve.Client.connect sock2 in
      (match Serve.Client.attach c2 ~cid ?after:last_ack () with
      | Ok () -> ()
      | Error f -> Alcotest.failf "attach: %s" (J.to_string f));
      let suffix, _summary = collect_stream c2 cid in
      let all = prefix @ suffix in
      (* no (job, jseq) lost or duplicated across the two lifetimes *)
      let keys = List.filter_map job_key all in
      let distinct = List.sort_uniq compare keys in
      Tu.check_int "every (job,jseq) exactly once" (List.length keys)
        (List.length distinct);
      Tu.check_int "all 16 job records present" 16 (List.length keys);
      Tu.check_string "stitched stream matches the direct run" reference
        (canon_of_records all);
      Serve.Client.close c2)

let orphan_start_not_duplicated () =
  (* hand-craft a journal caught between job.start and job.done: the
     resumed run must emit only the missing job.done *)
  let dir = tmp_dir "serve-orphan" in
  let spec = spec_json (mixed_jobs 2) in
  let jn = Serve.Journal.start ~dir ~cid:"orph" ~spec in
  Serve.Journal.append jn
    (J.Obj
       [
         ("type", J.Str "job.start");
         ("job", J.Int 0);
         ("jseq", J.Int 0);
         ("name", J.Str "c0");
       ]);
  Serve.Journal.close jn;
  with_server ~state_dir:dir (fun cfg srv ->
      Serve.Server.wait_idle srv;
      (match Serve.Server.campaign_state srv "orph" with
      | Some (2, 2, true) -> ()
      | Some (c, n, d) ->
        Alcotest.failf "state %d/%d complete=%b after resume" c n d
      | None -> Alcotest.fail "orphan campaign not recovered");
      let client = Serve.Client.connect cfg.Serve.Server.socket_path in
      (match Serve.Client.attach client ~cid:"orph" () with
      | Ok () -> ()
      | Error f -> Alcotest.failf "attach: %s" (J.to_string f));
      let records, _ = collect_stream client "orph" in
      let keys = List.filter_map job_key records in
      Tu.check_int "4 job records, none duplicated" 4
        (List.length (List.sort_uniq compare keys));
      Tu.check_int "orphan start emitted exactly once" 4 (List.length keys);
      Tu.check_string "canonical stream matches direct"
        (direct_canonical spec)
        (canon_of_records records);
      Serve.Client.close client)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Tu.tc "request frames" protocol_frames;
          Tu.tc "journal round-trip + truncation" journal_roundtrip;
        ] );
      ( "byte-identity",
        [
          Tu.tc "served stream matches direct run" served_matches_direct;
          Tu.tc "two campaigns, one connection" two_campaigns_one_connection;
        ] );
      ( "multiplexing",
        [ Tu.tc "small campaign not starved" small_campaign_not_starved ] );
      ( "admission",
        [
          Tu.tc "client and server quotas" quota_rejections;
          Tu.tc "duplicate cid rejected" duplicate_cid_rejected;
          Tu.tc "bad spec is a typed error" bad_spec_is_server_error;
        ] );
      ( "resume",
        [
          Tu.tc "disconnect: jobs complete, replay works" disconnect_then_attach;
          Tu.tc "restart resumes exactly-once" restart_resumes_exactly_once;
          Tu.tc "orphan job.start not re-emitted" orphan_start_not_duplicated;
        ] );
    ]
