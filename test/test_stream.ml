(** Live telemetry streaming (Obs.Stream, xmt.events.v1): bus contract
    (seq, required keys, overflow drops), rollup windows,
    canonicalization, the machine heartbeat producer's passivity and the
    campaign engine's serial-vs-parallel stream determinism. *)

module J = Obs.Json
module S = Obs.Stream
module C = Xmtsim.Config
module T = Core.Toolchain

let lines buf =
  List.filter
    (fun l -> String.trim l <> "")
    (String.split_on_char '\n' (Buffer.contents buf))

let records buf =
  List.map
    (fun l ->
      match S.validate_line l with
      | Ok j -> j
      | Error e -> Alcotest.failf "invalid stream line %S: %s" l e)
    (lines buf)

let typ j =
  match J.member "type" j with Some (J.Str s) -> s | _ -> "?"

let seq j = Option.get (Option.bind (J.member "seq" j) J.to_int)

(* ---- the bus contract ---- *)

let emit_and_seq () =
  let buf = Buffer.create 256 in
  let s = S.create (S.buffer_sink buf) in
  S.emit s ~typ:"a" ~t:10 [ ("k", J.Int 1) ];
  S.emit s ~typ:"b" [];
  S.close s;
  let rs = records buf in
  Tu.check_bool "open/a/b/close" true
    (List.map typ rs = [ "stream.open"; "a"; "b"; "stream.close" ]);
  (* seq is dense and monotonic; every record validates *)
  List.iteri (fun i j -> Tu.check_int "seq dense" i (seq j)) rs;
  (* explicit t is carried verbatim *)
  Tu.check_bool "t carried" true
    (Option.bind (J.member "t" (List.nth rs 1)) J.to_int = Some 10);
  (* the open record tags the schema *)
  Tu.check_bool "schema tag" true
    (J.member "schema" (List.hd rs) = Some (J.Str "xmt.events.v1"));
  (* close reports totals *)
  let close = List.nth rs 3 in
  Tu.check_bool "close totals" true
    (Option.bind (J.member "emitted" close) J.to_int = Some 3
    && Option.bind (J.member "dropped" close) J.to_int = Some 0);
  (* emitting after close is a no-op *)
  S.emit s ~typ:"late" [];
  Tu.check_int "no late records" 4 (List.length (records buf))

let overflow_drops () =
  let buf = Buffer.create 256 in
  let s = S.create ~capacity:2 (S.buffer_sink buf) in
  S.drain s;
  (* a paused consumer: the bounded queue fills, then drops *)
  S.pause s;
  for i = 1 to 5 do
    S.emit s ~typ:"x" ~t:i []
  done;
  Tu.check_int "queue capped" 2 (S.pending s);
  Tu.check_int "drops counted" 3 (S.dropped s);
  S.resume s;
  S.close s;
  let rs = records buf in
  (* dropped records still consumed sequence numbers: the gap is visible *)
  let seqs = List.map seq rs in
  Tu.check_bool "seq has gaps" true
    (List.length seqs < List.fold_left max 0 seqs + 1);
  let close = List.nth rs (List.length rs - 1) in
  Tu.check_bool "close counts drops" true
    (Option.bind (J.member "dropped" close) J.to_int = Some 3)

let reserved_sinks () =
  (* null sink still counts emissions *)
  let s = S.create (S.null_sink ()) in
  S.emit s ~typ:"x" [];
  Tu.check_int "emitted" 2 (S.emitted s);
  Tu.check_int "nothing dropped" 0 (S.dropped s);
  S.close s

(* ---- rollups ---- *)

let rollup_windows () =
  let buf = Buffer.create 256 in
  let s = S.create (S.buffer_sink buf) in
  let r = S.rollup ~window:2 s "hb" in
  (* 5 observations at window 2: two full windows + one trailing *)
  for i = 1 to 5 do
    S.observe r ~t:(i * 10) [ ("v", float_of_int i); ("w", 1.0) ]
  done;
  S.close_rollup r;
  S.close s;
  let ws = List.filter (fun j -> typ j = "window.close") (records buf) in
  Tu.check_int "three windows" 3 (List.length ws);
  let w0 = List.hd ws in
  Tu.check_bool "window name" true (J.member "window" w0 = Some (J.Str "hb"));
  Tu.check_bool "count" true (Option.bind (J.member "count" w0) J.to_int = Some 2);
  Tu.check_bool "span" true
    (Option.bind (J.member "t0" w0) J.to_int = Some 10
    && Option.bind (J.member "t1" w0) J.to_int = Some 20);
  let metric w key field =
    Option.bind (J.member "metrics" w) (fun m ->
        Option.bind (J.member key m) (fun v ->
            Option.bind (J.member field v) J.to_float))
  in
  Tu.check_bool "mean/min/max" true
    (metric w0 "v" "mean" = Some 1.5
    && metric w0 "v" "min" = Some 1.0
    && metric w0 "v" "max" = Some 2.0);
  (* the trailing window carries the leftover observation *)
  let w2 = List.nth ws 2 in
  Tu.check_bool "trailing count" true
    (Option.bind (J.member "count" w2) J.to_int = Some 1);
  Tu.check_bool "window indices" true
    (List.map (fun w -> Option.bind (J.member "index" w) J.to_int) ws
    = [ Some 0; Some 1; Some 2 ])

let empty_rollup_is_silent () =
  let buf = Buffer.create 256 in
  let s = S.create (S.buffer_sink buf) in
  let r = S.rollup ~window:4 s "hb" in
  S.close_rollup r;
  S.close s;
  Tu.check_bool "no window.close" true
    (List.for_all (fun j -> typ j <> "window.close") (records buf))

(* ---- validation ---- *)

let validation_errors () =
  let bad l =
    match S.validate_line l with Ok _ -> false | Error _ -> true
  in
  Tu.check_bool "garbage" true (bad "not json");
  Tu.check_bool "non-object" true (bad "[1,2]");
  Tu.check_bool "missing type" true (bad {|{"seq":0,"t":0}|});
  Tu.check_bool "non-string type" true (bad {|{"type":1,"seq":0,"t":0}|});
  Tu.check_bool "missing seq" true (bad {|{"type":"x","t":0}|});
  Tu.check_bool "missing t" true (bad {|{"type":"x","seq":0}|});
  Tu.check_bool "minimal ok" true
    (not (bad {|{"type":"x","seq":0,"t":0}|}));
  Tu.check_bool "required keys" true (S.required_keys = [ "type"; "seq"; "t" ])

let canonicalize_reorders () =
  (* the same per-job records interleaved differently plus different
     host-dependent fields canonicalize to byte-identical text *)
  let serial =
    String.concat "\n"
      [
        {|{"type":"stream.open","seq":0,"t":0,"schema":"xmt.events.v1"}|};
        {|{"type":"job.start","seq":1,"t":3,"job":0,"jseq":0,"name":"a"}|};
        {|{"type":"job.done","seq":2,"t":9,"job":0,"jseq":1,"name":"a","cycles":7,"wall_seconds":0.5}|};
        {|{"type":"campaign.progress","seq":3,"t":9,"completed":1,"total":2,"running":0}|};
        {|{"type":"job.start","seq":4,"t":10,"job":1,"jseq":0,"name":"b"}|};
        {|{"type":"job.done","seq":5,"t":12,"job":1,"jseq":1,"name":"b","cycles":9,"wall_seconds":0.1}|};
        {|{"type":"stream.close","seq":6,"t":12,"emitted":7,"dropped":0}|};
      ]
  in
  let parallel =
    String.concat "\n"
      [
        {|{"type":"stream.open","seq":0,"t":0,"schema":"xmt.events.v1"}|};
        {|{"type":"job.start","seq":1,"t":1,"job":1,"jseq":0,"name":"b"}|};
        {|{"type":"job.start","seq":2,"t":1,"job":0,"jseq":0,"name":"a"}|};
        {|{"type":"job.done","seq":3,"t":4,"job":1,"jseq":1,"name":"b","cycles":9,"wall_seconds":0.9}|};
        {|{"type":"campaign.progress","seq":4,"t":4,"completed":1,"total":2,"running":1}|};
        {|{"type":"job.done","seq":5,"t":5,"job":0,"jseq":1,"name":"a","cycles":7,"wall_seconds":0.2}|};
        {|{"type":"stream.close","seq":6,"t":5,"emitted":7,"dropped":0}|};
      ]
  in
  let cs = S.canonicalize_lines serial and cp = S.canonicalize_lines parallel in
  Tu.check_string "canonical forms agree" cs cp;
  Tu.check_bool "non-empty" true (String.length cs > 0);
  (* host-dependent keys are gone from the canonical form *)
  Tu.check_bool "no wall_seconds" true
    (not
       (List.exists
          (fun l ->
            match J.of_string l with
            | j -> J.member "wall_seconds" j <> None || J.member "seq" j <> None
            | exception J.Parse_error _ -> true)
          (List.filter (fun l -> l <> "") (String.split_on_char '\n' cs))))

(* ---- the machine heartbeat producer ---- *)

let src = Core.Kernels.ser_mem ~iters:400 ~n:256

let machine_stream_is_passive () =
  let compiled = T.compile src in
  let plain = T.machine ~config:C.tiny compiled in
  let rp = Xmtsim.Machine.run plain in
  let buf = Buffer.create 4096 in
  let s = S.create (S.buffer_sink buf) in
  let streamed = T.machine ~config:C.tiny compiled in
  Xmtsim.Machine.attach_stream ~heartbeat_cycles:500 streamed s;
  let rs = Xmtsim.Machine.run streamed in
  S.close s;
  (* bit-identical simulation: output, cycles, stats — and even the
     host-side event count, because the producer schedules nothing *)
  Tu.check_string "output" rp.Xmtsim.Machine.output rs.Xmtsim.Machine.output;
  Tu.check_int "cycles" rp.Xmtsim.Machine.cycles rs.Xmtsim.Machine.cycles;
  Tu.check_bool "stats" true
    (Xmtsim.Machine.stats plain = Xmtsim.Machine.stats streamed);
  Tu.check_int "host events identical"
    (Xmtsim.Machine.events_processed plain)
    (Xmtsim.Machine.events_processed streamed);
  let rs = records buf in
  let count t = List.length (List.filter (fun j -> typ j = t) rs) in
  Tu.check_int "one run.start" 1 (count "run.start");
  Tu.check_int "one run.done" 1 (count "run.done");
  Tu.check_bool "heartbeats emitted" true (count "sim.heartbeat" > 0);
  let don = List.find (fun j -> typ j = "run.done") rs in
  Tu.check_bool "run.done cycles" true
    (Option.bind (J.member "cycles" don) J.to_int
    = Some rp.Xmtsim.Machine.cycles);
  Tu.check_bool "run.done halted" true
    (J.member "halted" don = Some (J.Bool true));
  Tu.check_bool "nothing dropped" true
    (Option.bind (J.member "dropped" don) J.to_int = Some 0);
  (* heartbeat payload: grid cycle and the windowed gauges *)
  let hb = List.find (fun j -> typ j = "sim.heartbeat") rs in
  List.iter
    (fun k ->
      Tu.check_bool (k ^ " present") true (J.member k hb <> None))
    [ "cycle"; "events"; "events_per_sec"; "gated_domains"; "memwait_frac" ]

let attach_rules () =
  let compiled = T.compile src in
  let m = T.machine ~config:C.tiny compiled in
  let s = S.create (S.null_sink ()) in
  Xmtsim.Machine.attach_stream m s;
  (* double attach is rejected *)
  (match Xmtsim.Machine.attach_stream m (S.create (S.null_sink ())) with
  | exception Xmtsim.Machine.Sim_error _ -> ()
  | () -> Alcotest.fail "expected Sim_error on double attach");
  Tu.check_bool "stream visible" true (Xmtsim.Machine.stream m <> None);
  Xmtsim.Machine.detach_stream m;
  Tu.check_bool "detached" true (Xmtsim.Machine.stream m = None);
  (* attaching after the first run is rejected *)
  let m2 = T.machine ~config:C.tiny compiled in
  ignore (Xmtsim.Machine.run m2);
  (match Xmtsim.Machine.attach_stream m2 s with
  | exception Xmtsim.Machine.Sim_error _ -> ()
  | () -> Alcotest.fail "expected Sim_error after run");
  (* non-positive heartbeat interval is rejected *)
  let m3 = T.machine ~config:C.tiny compiled in
  match Xmtsim.Machine.attach_stream ~heartbeat_cycles:0 m3 s with
  | exception Xmtsim.Machine.Sim_error _ -> ()
  | () -> Alcotest.fail "expected Sim_error on interval 0"

(* ---- the campaign producer ---- *)

let campaign_specs () =
  [
    ("j0", T.job ~name:"j0" ~config:C.tiny (Core.Kernels.vecadd ~n:16));
    ("j1", T.job ~name:"j1" ~config:C.tiny ~seed:7 (Core.Kernels.vecadd ~n:24));
    ("j2", T.job ~name:"j2" ~config:C.tiny ~mode:T.Functional
       (Core.Kernels.vecadd ~n:16));
    ( "boom",
      T.job ~name:"boom" ~config:C.tiny
        "int main() { return undeclared_thing; }" );
  ]

let campaign_stream lines_jobs =
  let buf = Buffer.create 4096 in
  let s = S.create (S.buffer_sink buf) in
  let _ = Campaign.run ~jobs:lines_jobs ~stream:s (campaign_specs ()) in
  S.close s;
  Buffer.contents buf

let campaign_stream_contract () =
  let text = campaign_stream 1 in
  let rs =
    List.map
      (fun l ->
        match S.validate_line l with
        | Ok j -> j
        | Error e -> Alcotest.failf "invalid line %S: %s" l e)
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' text))
  in
  let count t = List.length (List.filter (fun j -> typ j = t) rs) in
  Tu.check_int "campaign.start" 1 (count "campaign.start");
  Tu.check_int "campaign.done" 1 (count "campaign.done");
  Tu.check_int "job.start per job" 4 (count "job.start");
  Tu.check_int "job.done per job" 4 (count "job.done");
  Tu.check_int "progress per completion" 4 (count "campaign.progress");
  (* progress carries completed/total and an ETA *)
  let p = List.find (fun j -> typ j = "campaign.progress") rs in
  List.iter
    (fun k -> Tu.check_bool (k ^ " present") true (J.member k p <> None))
    [ "completed"; "total"; "ok"; "failed"; "running"; "workers";
      "jobs_per_sec"; "eta_seconds" ];
  (* the failed job reports its error *)
  let failed =
    List.find
      (fun j ->
        typ j = "job.done" && J.member "status" j = Some (J.Str "failed"))
      rs
  in
  Tu.check_bool "failure text" true (J.member "error" failed <> None);
  (* final progress has eta 0 and completed = total *)
  let last_p =
    List.nth (List.filter (fun j -> typ j = "campaign.progress") rs) 3
  in
  Tu.check_bool "final eta zero" true
    (Option.bind (J.member "eta_seconds" last_p) J.to_float = Some 0.0)

let campaign_serial_parallel_canonical () =
  let serial = campaign_stream 1 in
  let parallel = campaign_stream 3 in
  Tu.check_string "canonical streams byte-identical"
    (S.canonicalize_lines serial)
    (S.canonicalize_lines parallel);
  Tu.check_bool "canonical form non-empty" true
    (String.length (S.canonicalize_lines serial) > 0)

let () =
  Alcotest.run "stream"
    [
      ( "bus",
        [
          Tu.tc "emit + seq + open/close" emit_and_seq;
          Tu.tc "overflow drops, seq gaps" overflow_drops;
          Tu.tc "null sink" reserved_sinks;
        ] );
      ( "rollup",
        [
          Tu.tc "window close + trailing flush" rollup_windows;
          Tu.tc "empty rollup silent" empty_rollup_is_silent;
        ] );
      ( "schema",
        [
          Tu.tc "validation errors" validation_errors;
          Tu.tc "canonicalize reorders + strips" canonicalize_reorders;
        ] );
      ( "machine",
        [
          Tu.tc "heartbeats are passive" machine_stream_is_passive;
          Tu.tc "attach rules" attach_rules;
        ] );
      ( "campaign",
        [
          Tu.tc "lifecycle + progress + ETA" campaign_stream_contract;
          Tu.tc "serial = parallel (canonical)" campaign_serial_parallel_canonical;
        ] );
    ]
