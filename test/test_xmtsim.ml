(** Tests for the cycle-accurate simulator and its components (§III). *)

module M = Xmtsim.Machine
module C = Xmtsim.Config

(* ------------------------------------------------------------------ *)
(* Tags *)

let tags_basic () =
  let t = Xmtsim.Tags.create ~lines:4 ~assoc:2 ~line_words:4 in
  Tu.check_bool "cold miss" false (Xmtsim.Tags.lookup t 0x1000);
  Xmtsim.Tags.install t 0x1000;
  Tu.check_bool "hit" true (Xmtsim.Tags.lookup t 0x1004);
  Tu.check_bool "other line misses" false (Xmtsim.Tags.lookup t 0x1010);
  Xmtsim.Tags.invalidate_all t;
  Tu.check_bool "invalidated" false (Xmtsim.Tags.lookup t 0x1000)

let tags_lru_eviction () =
  (* 2 lines, assoc 2 -> one set with two ways *)
  let t = Xmtsim.Tags.create ~lines:2 ~assoc:2 ~line_words:1 in
  Xmtsim.Tags.install t 0;
  Xmtsim.Tags.install t 4;
  ignore (Xmtsim.Tags.lookup t 0);
  (* touch line 0 *)
  Xmtsim.Tags.install t 8;
  (* should evict line 4 (LRU) *)
  Tu.check_bool "line 0 kept" true (Xmtsim.Tags.lookup t 0);
  Tu.check_bool "line 4 evicted" false (Xmtsim.Tags.lookup t 4);
  Tu.check_bool "line 8 present" true (Xmtsim.Tags.lookup t 8)

let tags_zero_size () =
  let t = Xmtsim.Tags.create ~lines:0 ~assoc:2 ~line_words:4 in
  Xmtsim.Tags.install t 0x1000;
  Tu.check_bool "never hits" false (Xmtsim.Tags.lookup t 0x1000);
  Tu.check_bool "hits impossible" false (Xmtsim.Tags.hits_possible t)

(* ------------------------------------------------------------------ *)
(* Prefetch buffer *)

let pbuf_fill_and_hit () =
  let b = Xmtsim.Prefetch_buffer.create ~size:2 ~policy:C.Fifo in
  Tu.check_bool "start" true (Xmtsim.Prefetch_buffer.start b 100);
  Tu.check_bool "no duplicate request" false (Xmtsim.Prefetch_buffer.start b 100);
  (match Xmtsim.Prefetch_buffer.lookup b 100 with
  | Xmtsim.Prefetch_buffer.In_flight -> ()
  | _ -> Alcotest.fail "expected in-flight");
  ignore (Xmtsim.Prefetch_buffer.fill b 100 (Isa.Value.int 7));
  match Xmtsim.Prefetch_buffer.lookup b 100 with
  | Xmtsim.Prefetch_buffer.Hit v -> Tu.check_int "value" 7 (Isa.Value.to_int v)
  | _ -> Alcotest.fail "expected hit"

let pbuf_fifo_eviction () =
  let b = Xmtsim.Prefetch_buffer.create ~size:2 ~policy:C.Fifo in
  ignore (Xmtsim.Prefetch_buffer.start b 1);
  ignore (Xmtsim.Prefetch_buffer.start b 2);
  ignore (Xmtsim.Prefetch_buffer.fill b 1 (Isa.Value.int 1));
  ignore (Xmtsim.Prefetch_buffer.fill b 2 (Isa.Value.int 2));
  (* touch 1 (FIFO ignores it) then insert 3 -> evicts 1 *)
  ignore (Xmtsim.Prefetch_buffer.lookup b 1);
  ignore (Xmtsim.Prefetch_buffer.start b 3);
  Tu.check_bool "1 evicted (fifo)" true
    (Xmtsim.Prefetch_buffer.lookup b 1 = Xmtsim.Prefetch_buffer.Miss);
  Tu.check_int "evictions" 1 (Xmtsim.Prefetch_buffer.evictions b)

let pbuf_lru_eviction () =
  let b = Xmtsim.Prefetch_buffer.create ~size:2 ~policy:C.Lru in
  ignore (Xmtsim.Prefetch_buffer.start b 1);
  ignore (Xmtsim.Prefetch_buffer.start b 2);
  ignore (Xmtsim.Prefetch_buffer.fill b 1 (Isa.Value.int 1));
  ignore (Xmtsim.Prefetch_buffer.fill b 2 (Isa.Value.int 2));
  ignore (Xmtsim.Prefetch_buffer.lookup b 1);
  (* LRU protects 1 *)
  ignore (Xmtsim.Prefetch_buffer.start b 3);
  Tu.check_bool "2 evicted (lru)" true
    (Xmtsim.Prefetch_buffer.lookup b 2 = Xmtsim.Prefetch_buffer.Miss);
  Tu.check_bool "1 kept (lru)" true
    (Xmtsim.Prefetch_buffer.lookup b 1 <> Xmtsim.Prefetch_buffer.Miss)

let pbuf_waiter () =
  let b = Xmtsim.Prefetch_buffer.create ~size:2 ~policy:C.Fifo in
  ignore (Xmtsim.Prefetch_buffer.start b 8);
  Xmtsim.Prefetch_buffer.wait_on b 8 (`I 5);
  match Xmtsim.Prefetch_buffer.fill b 8 (Isa.Value.int 3) with
  | Some (`I 5) -> ()
  | _ -> Alcotest.fail "expected waiter"

let pbuf_size_zero () =
  let b = Xmtsim.Prefetch_buffer.create ~size:0 ~policy:C.Fifo in
  Tu.check_bool "no buffering" false (Xmtsim.Prefetch_buffer.start b 1)

(* ------------------------------------------------------------------ *)
(* Mem *)

let mem_image () =
  let img =
    Isa.Program.resolve (Isa.Asm.parse "main: halt\n.data\nA: .word 11, 22")
  in
  let m = Xmtsim.Mem.load img in
  let base = Isa.Program.data_base_addr in
  Tu.check_int "init" 22 (Isa.Value.to_int (Xmtsim.Mem.read m (base + 4)));
  Xmtsim.Mem.write m (base + 8) (Isa.Value.int 7);
  Tu.check_int "write/read" 7 (Isa.Value.to_int (Xmtsim.Mem.read m (base + 8)));
  Tu.check_int "fetch_add old" 11 (Xmtsim.Mem.fetch_add m base 5);
  Tu.check_int "fetch_add new" 16 (Isa.Value.to_int (Xmtsim.Mem.read m base))

let mem_stack_region () =
  let img = Isa.Program.resolve (Isa.Asm.parse "main: halt") in
  let m = Xmtsim.Mem.load img in
  let sp = Xmtsim.Mem.stack_top - 4 in
  Xmtsim.Mem.write m sp (Isa.Value.int 99);
  Tu.check_int "stack rw" 99 (Isa.Value.to_int (Xmtsim.Mem.read m sp))

let mem_faults () =
  let img = Isa.Program.resolve (Isa.Asm.parse "main: halt") in
  let m = Xmtsim.Mem.load img in
  (match Xmtsim.Mem.read m 3 with
  | exception Xmtsim.Mem.Fault _ -> ()
  | _ -> Alcotest.fail "expected unaligned fault");
  match Xmtsim.Mem.read m 0 with
  | exception Xmtsim.Mem.Fault _ -> ()
  | _ -> Alcotest.fail "expected unmapped fault"

(* ------------------------------------------------------------------ *)
(* Machine on handwritten assembly *)

let asm_arith () =
  let r, _ =
    Tu.run_asm
      {|
main:
  li $t0, 6
  li $t1, 7
  mul $t2, $t0, $t1
  addi $t2, $t2, -2
  pint $t2
  halt
|}
  in
  Tu.check_string "6*7-2" "40" r.M.output

let asm_float () =
  let r, _ =
    Tu.run_asm
      {|
main:
  li.s $f1, 2.0
  li.s $f2, 0.25
  add.s $f3, $f1, $f2
  sqrt.s $f4, $f3
  pflt $f4
  halt
|}
  in
  Tu.check_string "sqrt(2.25)" "1.5" r.M.output

let asm_branches () =
  let r, _ =
    Tu.run_asm
      {|
main:
  li $t0, 0
  li $t1, 0
Lloop:
  addi $t0, $t0, 1
  add $t1, $t1, $t0
  slti $t2, $t0, 10
  bnez $t2, Lloop
  pint $t1
  halt
|}
  in
  Tu.check_string "sum 1..10" "55" r.M.output

let asm_memory () =
  let r, _ =
    Tu.run_asm
      {|
main:
  la $t0, A
  lw $t1, 0($t0)
  lw $t2, 4($t0)
  add $t3, $t1, $t2
  sw $t3, 8($t0)
  lw $t4, 8($t0)
  pint $t4
  halt
  .data
A: .word 30, 12, 0
|}
  in
  Tu.check_string "load/store" "42" r.M.output

let spawn_asm body =
  Printf.sprintf
    {|
main:
  li $t0, 0
  li $t1, 7
  spawn $t0, $t1
Ldisp:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
%s
  j Ldisp
  join
  la $t0, A
  li $t1, 0
  li $t3, 0
Lsum:
  lw $t4, 0($t0)
  add $t1, $t1, $t4
  addi $t0, $t0, 4
  addi $t3, $t3, 1
  slti $t5, $t3, 8
  bnez $t5, Lsum
  pint $t1
  halt
  .data
A: .space 32
|}
    body

let asm_spawn_join () =
  (* each virtual thread writes id+1 into A[id]; master sums after join *)
  let r, m =
    Tu.run_asm
      (spawn_asm
         {|
  la $t3, A
  sll $t4, $t2, 2
  add $t3, $t3, $t4
  addi $t5, $t2, 1
  sw.nb $t5, 0($t3)
|})
  in
  Tu.check_string "sum of ids+1" "36" r.M.output;
  Tu.check_int "8 virtual threads" 8 (M.stats m).Xmtsim.Stats.virtual_threads;
  Tu.check_int "one spawn" 1 (M.stats m).Xmtsim.Stats.spawns

let asm_ps_distributes_ids () =
  (* ps on a user base: each thread adds 1, master reads final count *)
  let r, _ =
    Tu.run_asm
      {|
main:
  li $at, 5
  mtg $g0, $at
  li $t0, 0
  li $t1, 9
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  li $t3, 1
  ps $t3, $g0
  j Ld
  join
  mfg $t4, $g0
  pint $t4
  halt
|}
  in
  Tu.check_string "5 + 10 increments" "15" r.M.output

let asm_ps_requires_unit_increment () =
  let asm =
    {|
main:
  li $t0, 0
  li $t1, 1
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  li $t3, 2
  ps $t3, $g0
  j Ld
  join
  halt
|}
  in
  match Tu.run_asm asm with
  | exception M.Sim_error msg ->
    Tu.check_bool "mentions 0 or 1" true
      (let re = "0 or 1" in
       let rec find i =
         if i + String.length re > String.length msg then false
         else if String.sub msg i (String.length re) = re then true
         else find (i + 1)
       in
       find 0)
  | _ -> Alcotest.fail "expected ps increment error"

let asm_psm_atomicity () =
  (* 8 threads psm +3 on one location; result must be exactly 24 *)
  let r, m =
    Tu.run_asm
      {|
main:
  li $t0, 0
  li $t1, 7
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  li $t3, 3
  la $t4, X
  psm $t3, 0($t4)
  j Ld
  join
  la $t0, X
  lw $t1, 0($t0)
  pint $t1
  halt
  .data
X: .word 0
|}
  in
  Tu.check_string "atomic sum" "24" r.M.output;
  Tu.check_int "psm count" 8 (M.stats m).Xmtsim.Stats.psm_ops

let asm_region_violation () =
  (* a branch out of the spawn region must trip the broadcast check *)
  let asm =
    {|
main:
  li $t0, 0
  li $t1, 3
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
  j Outside
  j Ld
  join
  halt
Outside:
  j Ld
|}
  in
  match Tu.run_asm asm with
  | exception M.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected broadcast region violation"

let asm_lwro_uses_rocache () =
  let r, m =
    Tu.run_asm
      (spawn_asm
         {|
  la $t3, K
  lw.ro $t4, 0($t3)
  la $t5, A
  sll $t6, $t2, 2
  add $t5, $t5, $t6
  sw.nb $t4, 0($t5)
|}
      ^ "\nK: .word 2\n")
  in
  Tu.check_string "8 * K" "16" r.M.output;
  let s = M.stats m in
  Tu.check_bool "rocache hits" true (s.Xmtsim.Stats.rocache_hits > 0)

let functional_equals_cycle () =
  let asm =
    spawn_asm
      {|
  la $t3, A
  sll $t4, $t2, 2
  add $t3, $t3, $t4
  mul $t5, $t2, $t2
  sw.nb $t5, 0($t3)
|}
  in
  let f = Tu.run_asm_functional asm in
  let r, _ = Tu.run_asm asm in
  Tu.check_string "same output" f.Xmtsim.Functional_mode.output r.M.output

let functional_much_faster () =
  (* functional mode executes the same instructions with no cycle model *)
  let asm = spawn_asm {|
  la $t3, A
  sll $t4, $t2, 2
  add $t3, $t3, $t4
  sw.nb $t2, 0($t3)
|} in
  let f = Tu.run_asm_functional asm in
  let r, m = Tu.run_asm asm in
  (* the cycle model runs a terminating ps+chkid dispatch round on every
     TCU, while the serializing functional mode runs exactly one *)
  let tcus = Xmtsim.Config.num_tcus C.tiny in
  Tu.check_bool "instruction counts close" true
    (abs (f.Xmtsim.Functional_mode.instructions
          - Xmtsim.Stats.total_instrs (M.stats m))
     <= (3 * tcus) + 2);
  Tu.check_bool "cycle mode took cycles" true (r.M.cycles > 50)

(* ------------------------------------------------------------------ *)
(* Timing behaviour *)

let more_tcus_faster () =
  let src = Core.Kernels.vecadd ~n:256 in
  let compiled = Core.Toolchain.compile src in
  let cycles cfg =
    (Core.Toolchain.run_cycle ~config:cfg compiled).Core.Toolchain.cycles
  in
  let c4 = cycles C.tiny in
  let c64 = cycles C.fpga64 in
  Tu.check_bool
    (Printf.sprintf "64 TCUs (%d) beat 4 TCUs (%d)" c64 c4)
    true (c64 * 2 < c4)

let dvfs_slows_execution () =
  let src = Core.Kernels.vecadd ~n:64 in
  let compiled = Core.Toolchain.compile src in
  let run period =
    let m = Core.Toolchain.machine ~config:C.tiny compiled in
    List.iter (fun d -> M.set_period m d period) [ M.Clusters; M.Icn; M.Caches; M.Dram ];
    (M.run m).M.cycles
  in
  let fast = run 1 and slow = run 4 in
  Tu.check_bool (Printf.sprintf "period 4 (%d) slower than 1 (%d)" slow fast)
    true (slow > fast * 2)

let slow_dram_hurts_memory_kernel () =
  let src = Core.Kernels.par_mem ~threads:16 ~iters:16 ~n:1024 in
  let compiled = Core.Toolchain.compile src in
  let cycles lat =
    let cfg =
      C.with_overrides C.fpga64 [ Printf.sprintf "dram_latency=%d" lat ]
    in
    (Core.Toolchain.run_cycle ~config:cfg compiled).Core.Toolchain.cycles
  in
  Tu.check_bool "dram 400 slower than 20" true (cycles 400 > cycles 20)

let prefetch_buffers_help () =
  let src = Core.Kernels.par_mem ~threads:16 ~iters:32 ~n:4096 in
  let compiled = Core.Toolchain.compile src in
  let cycles size =
    let cfg =
      C.with_overrides C.fpga64 [ Printf.sprintf "prefetch_buffer_size=%d" size ]
    in
    let r = Core.Toolchain.run_cycle ~config:cfg compiled in
    r.Core.Toolchain.cycles
  in
  let without = cycles 0 and with8 = cycles 8 in
  Tu.check_bool
    (Printf.sprintf "prefetch (%d) beats none (%d)" with8 without)
    true (with8 < without)

let deterministic_across_runs () =
  let src = Core.Kernels.compaction ~n:64 in
  let a = Core.Workloads.sparse_array ~seed:5 ~n:64 ~density:50 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let r1 = Core.Toolchain.run_cycle ~config:C.fpga64 compiled in
  let r2 = Core.Toolchain.run_cycle ~config:C.fpga64 compiled in
  Tu.check_int "same cycle count" r1.Core.Toolchain.cycles r2.Core.Toolchain.cycles;
  Tu.check_string "same output" r1.Core.Toolchain.output r2.Core.Toolchain.output

let max_cycles_budget () =
  let img = Isa.Program.resolve (Isa.Asm.parse "main: j main") in
  let m = M.create ~config:C.tiny img in
  let r = M.run ~max_cycles:1000 m in
  Tu.check_bool "not halted" false r.M.halted;
  Tu.check_bool "stopped near budget" true (r.M.cycles <= 1001)

(* ------------------------------------------------------------------ *)
(* Plugins, traces, checkpoints *)

let filter_plugin_hot_locations () =
  let src = Core.Kernels.reduce_psm ~n:32 in
  let compiled = Core.Toolchain.compile src in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  M.add_filter_plugin m (Xmtsim.Plugin.hot_locations ~top:3 ());
  ignore (M.run m);
  match M.filter_reports m with
  | [ (name, report) ] ->
    Tu.check_string "name" "hot-locations" name;
    Tu.check_bool "has content" true (String.length report > 20)
  | _ -> Alcotest.fail "expected one report"

let activity_plugin_called () =
  let src = Core.Kernels.vecadd ~n:64 in
  let compiled = Core.Toolchain.compile src in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let samples = ref 0 in
  M.add_activity_plugin m ~name:"probe" ~interval:50 (fun _ _ -> incr samples);
  ignore (M.run m);
  Tu.check_bool "sampled" true (!samples > 0)

let trace_captures_instrs () =
  let compiled = Core.Toolchain.compile "int main() { print_int(3); return 0; }" in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let buf = Buffer.create 256 in
  Xmtsim.Trace.attach ~filter:{ Xmtsim.Trace.all with Xmtsim.Trace.limit = 10 } m
    (Buffer.add_string buf);
  ignore (M.run m);
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Tu.check_bool "captured some lines" true (List.length lines > 3);
  Tu.check_bool "mentions MTCU" true
    (List.exists
       (fun l -> String.length l > 10 && String.sub l 9 4 = "MTCU")
       lines)

let package_trace_stations () =
  let asm = spawn_asm {|
  la $t3, A
  lw $t4, 0($t3)
  sw.nb $t4, 0($t3)
|} in
  let img = Isa.Program.resolve (Isa.Asm.parse asm) in
  let m = M.create ~config:C.tiny img in
  let stages = ref [] in
  M.on_package m (fun ev ->
      if ev.M.pe_kind = "load" || ev.M.pe_stage = "dram-fill" then
        stages := ev.M.pe_stage :: !stages);
  ignore (M.run m);
  let order = List.rev !stages in
  (* the first load is a cold miss: inject -> arrive -> miss -> fill -> reply *)
  let rec is_subseq needle hay =
    match (needle, hay) with
    | [], _ -> true
    | _, [] -> false
    | n :: ns, h :: hs -> if n = h then is_subseq ns hs else is_subseq needle hs
  in
  Tu.check_bool "stations in order" true
    (is_subseq
       [ "icn-inject"; "module-arrive"; "cache-miss"; "dram-fill"; "reply" ]
       order)

let checkpoint_resume_equivalence () =
  (* run A: straight through; run B: checkpoint at start, restore into a
     fresh machine, run: same output *)
  let src = Core.Kernels.compaction ~n:32 in
  let a = Core.Workloads.sparse_array ~seed:8 ~n:32 ~density:50 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m1 = Core.Toolchain.machine ~config:C.tiny compiled in
  let snap = M.checkpoint m1 in
  let r1 = M.run m1 in
  let m2 = Core.Toolchain.machine ~config:C.tiny compiled in
  M.restore m2 snap;
  let r2 = M.run m2 in
  Tu.check_string "same output" r1.M.output r2.M.output;
  Tu.check_int "same cycles" r1.M.cycles r2.M.cycles

let checkpoint_mid_run () =
  (* §III-E: save at a point given ahead of time, resume later *)
  let src = {|
int A[128];
int total = 0;
int main(void) {
  int r;
  for (r = 0; r < 6; r++) {
    spawn(0, 127) {
      int v = A[$] + r;
      psm(v, total);
    }
  }
  print_int(total);
  return 0;
}
|} in
  let compiled = Core.Toolchain.compile src in
  let straight = Core.Toolchain.run_cycle ~config:C.tiny compiled in
  let m1 = Core.Toolchain.machine ~config:C.tiny compiled in
  ignore (M.run ~max_cycles:(straight.Core.Toolchain.cycles / 2) m1);
  M.run_to_quiescent m1;
  Tu.check_bool "not yet finished" false
    (M.cycles m1 >= straight.Core.Toolchain.cycles);
  let snap = M.checkpoint m1 in
  let m2 = Core.Toolchain.machine ~config:C.tiny compiled in
  M.restore m2 snap;
  let r2 = M.run m2 in
  Tu.check_bool "resumed run halts" true r2.M.halted;
  Tu.check_string "same final output" straight.Core.Toolchain.output r2.M.output

let checkpoint_file_roundtrip () =
  let compiled = Core.Toolchain.compile "int main() { print_int(9); return 0; }" in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let snap = M.checkpoint m in
  let path = Filename.temp_file "xmtsnap" ".bin" in
  M.snapshot_to_file snap path;
  let snap2 = M.snapshot_of_file path in
  Sys.remove path;
  let m2 = Core.Toolchain.machine ~config:C.tiny compiled in
  M.restore m2 snap2;
  Tu.check_string "ran from file snapshot" "9" (M.run m2).M.output

let stats_json stats =
  let reg = Obs.Metrics.create () in
  Xmtsim.Stats.export stats reg;
  Obs.Json.to_string (Obs.Metrics.to_json reg)

let checkpoint_preserves_telemetry () =
  (* a mid-run checkpoint must carry the accumulated Stats (counters and
     latency histograms) and the ICN contention state across the file
     round trip, so a resumed run reports the same telemetry as a
     straight one *)
  let src = {|
int A[128];
int total = 0;
int main(void) {
  int r;
  for (r = 0; r < 6; r++) {
    spawn(0, 127) {
      int v = A[$] + r;
      psm(v, total);
    }
  }
  print_int(total);
  return 0;
}
|} in
  let compiled = Core.Toolchain.compile src in
  let straight = Core.Toolchain.run_cycle ~config:C.tiny compiled in
  let m1 = Core.Toolchain.machine ~config:C.tiny compiled in
  ignore (M.run ~max_cycles:(straight.Core.Toolchain.cycles / 2) m1);
  M.run_to_quiescent m1;
  let path = Filename.temp_file "xmtsnap" ".bin" in
  M.snapshot_to_file (M.checkpoint m1) path;
  let snap = M.snapshot_of_file path in
  Sys.remove path;
  let m2 = Core.Toolchain.machine ~config:C.tiny compiled in
  M.restore m2 snap;
  (* restored telemetry is byte-identical: every Stats counter and every
     latency histogram bucket survived the Marshal round trip *)
  Tu.check_string "stats export equal after restore" (stats_json (M.stats m1))
    (stats_json (M.stats m2));
  Tu.check_bool "icn contention state equal" true
    (M.icn_backlog m1 = M.icn_backlog m2);
  Tu.check_bool "mem round-trips already observed" true
    (let s = stats_json (M.stats m1) in
     (* the mid-run stats contain populated latency histograms *)
     let j = Obs.Json.of_string s in
     match Obs.Json.member "metrics" j with
     | Some (Obs.Json.List ms) ->
       List.exists
         (fun m ->
           Obs.Json.member "name" m = Some (Obs.Json.Str "sim.mem.request_latency")
           && (match Obs.Json.member "count" m with
              | Some (Obs.Json.Int n) -> n > 0
              | _ -> false))
         ms
     | _ -> false);
  (* and the resumed run still completes with the right answer *)
  let r2 = M.run m2 in
  Tu.check_string "same final output" straight.Core.Toolchain.output r2.M.output;
  (* a fresh machine finishing the back half accumulates strictly more
     telemetry than the checkpoint had: the counters keep counting *)
  Tu.check_bool "stats keep accumulating" true
    (stats_json (M.stats m2) <> stats_json (M.stats m1))

(* ------------------------------------------------------------------ *)
(* DVFS governor *)

let governor_throttles_and_logs () =
  (* an impossible-to-satisfy thermal limit forces a throttle decision on
     the first sample; the decision must show up in the decision log, the
     clock period, the metrics export, the JSON and the span trace *)
  let src = Core.Kernels.compaction ~n:32 in
  let a = Core.Workloads.sparse_array ~seed:8 ~n:32 ~density:50 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let compiled = Core.Toolchain.compile ~memmap src in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let tr = Obs.Tracer.create () in
  M.attach_tracer m tr;
  let g = Xmtsim.Governor.attach ~temp_hi:1.0 ~interval:40 m in
  let base = M.period m M.Clusters in
  let r = M.run m in
  Tu.check_bool "halted" true r.M.halted;
  let ds = Xmtsim.Governor.decisions g in
  Tu.check_bool "made decisions" true (ds <> []);
  let d = List.hd ds in
  Tu.check_string "reason" "thermal-high" d.Xmtsim.Governor.d_reason;
  Tu.check_int "from base period" base d.Xmtsim.Governor.d_from;
  Tu.check_int "throttled to 2" 2 d.Xmtsim.Governor.d_to;
  Tu.check_int "clusters stay throttled" 2 (M.period m M.Clusters);
  Tu.check_int "icn throttled too" 2 (M.period m M.Icn);
  Tu.check_bool "sampled more than once" true (Xmtsim.Governor.samples g > 1);
  (* timeseries channels carry the same story *)
  let series = Xmtsim.Governor.timeseries g in
  let per = Obs.Timeseries.channel series "sim.governor.cluster_period" in
  Tu.check_bool "period channel recorded throttle" true
    (Obs.Timeseries.max_value per = 2.0);
  (* metrics export *)
  let reg = Obs.Metrics.create () in
  Xmtsim.Governor.export g reg;
  Tu.check_bool "set_period counter" true
    (Obs.Metrics.counter_value reg
       ~labels:[ ("domain", "clusters"); ("reason", "thermal-high") ]
       "sim.governor.set_period_total"
    = Some 1);
  (* JSON decision log *)
  (match Obs.Json.member "decisions" (Xmtsim.Governor.to_json g) with
  | Some (Obs.Json.List l) ->
    Tu.check_int "json decisions" (List.length ds) (List.length l)
  | _ -> Alcotest.fail "no decisions list in governor json");
  (* trace: governor instants present on the governor thread *)
  M.flush_tracer m;
  match Obs.Json.of_string (Obs.Tracer.to_string tr) with
  | Obs.Json.List events ->
    let gov_events =
      List.filter
        (fun e ->
          Obs.Json.member "name" e = Some (Obs.Json.Str "set_period")
          && Obs.Json.member "cat" e = Some (Obs.Json.Str "governor"))
        events
    in
    Tu.check_int "trace instants match decisions" (List.length ds)
      (List.length gov_events);
    List.iter
      (fun e ->
        Tu.check_bool "on governor tid" true
          (Obs.Json.member "tid" e
          = Some (Obs.Json.Int (M.trace_tid_governor m))))
      gov_events
  | _ -> Alcotest.fail "trace not a list"

let governor_recovers () =
  (* thresholds nothing can reach: the governor samples but leaves the
     clocks alone — no spurious decisions on a healthy run *)
  let compiled =
    Core.Toolchain.compile "int main() { print_int(7); return 0; }"
  in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let g = Xmtsim.Governor.attach ~temp_hi:1e9 ~icn_hi:1e9 ~interval:40 m in
  let base = M.period m M.Clusters in
  ignore (M.run m);
  Tu.check_bool "no decisions" true (Xmtsim.Governor.decisions g = []);
  Tu.check_int "period untouched" base (M.period m M.Clusters)

(* ------------------------------------------------------------------ *)
(* Power / thermal / floorplan *)

let per_cluster_activity_attribution () =
  (* a 4-thread spawn on fpga64 occupies only one cluster: its activity
     counter and power must exceed the idle clusters' *)
  let src = {|
int B[4];
int main(void) {
  spawn(0, 3) {
    int x = $;
    int k;
    for (k = 0; k < 200; k++) x = (x * 3 + 1) & 65535;
    B[$] = x;
  }
  return 0;
}
|} in
  let compiled = Core.Toolchain.compile src in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  let p = Xmtsim.Power.create m in
  let last = ref [||] in
  M.add_activity_plugin m ~name:"probe" ~interval:200 (fun _ _ ->
      last := Xmtsim.Power.sample p);
  ignore (M.run m);
  let act = M.cluster_activity m in
  Tu.check_bool "cluster 0 did the work" true
    (act.(0) > 100 && Array.for_all (fun c -> c <= act.(0)) act);
  (* other clusters only ran the dispatch round (ps + failing chkid) *)
  Tu.check_bool "work concentrated on cluster 0" true
    (act.(0) > 5 * act.(Array.length act - 1));
  if Array.length !last > 1 then
    Tu.check_bool "busy cluster draws more power" true (!last.(0) > !last.(1))

let power_sampling () =
  let src = Core.Kernels.par_comp ~threads:16 ~iters:50 in
  let compiled = Core.Toolchain.compile src in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  let p = Xmtsim.Power.create m in
  let totals = ref [] in
  M.add_activity_plugin m ~name:"power" ~interval:100 (fun _ _ ->
      ignore (Xmtsim.Power.sample p);
      totals := Xmtsim.Power.total p :: !totals);
  ignore (M.run m);
  Tu.check_bool "sampled" true (!totals <> []);
  List.iter (fun t -> Tu.check_bool "positive power" true (t > 0.0)) !totals

let thermal_heats_and_cools () =
  let names = Array.append (Array.init 4 (fun i -> Printf.sprintf "cluster%d" i))
      [| "icn" |] in
  let th = Xmtsim.Thermal.create ~grid_w:2 names in
  let p = Xmtsim.Thermal.default in
  let hot = [| 5.0; 0.0; 0.0; 0.0; 1.0 |] in
  for _ = 1 to 100 do
    Xmtsim.Thermal.step th ~dt:0.001 hot
  done;
  let temps = Array.copy (Xmtsim.Thermal.temperatures th) in
  Tu.check_bool "hot cluster above ambient" true (temps.(0) > p.Xmtsim.Thermal.ambient);
  Tu.check_bool "hot cluster hottest" true (temps.(0) > temps.(3));
  (* lateral coupling warms the neighbour above the far corner *)
  Tu.check_bool "neighbour coupling" true (temps.(1) > temps.(3));
  (* cooling with zero power *)
  for _ = 1 to 2000 do
    Xmtsim.Thermal.step th ~dt:0.001 (Array.make 5 0.0)
  done;
  let cooled = Xmtsim.Thermal.temperatures th in
  Tu.check_bool "cools toward ambient" true
    (cooled.(0) < temps.(0) && cooled.(0) -. p.Xmtsim.Thermal.ambient < 1.0)

let floorplan_renders () =
  let v = Array.init 16 float_of_int in
  let s = Xmtsim.Floorplan.render ~title:"test" ~grid_w:4 v in
  Tu.check_bool "multi-line" true (List.length (String.split_on_char '\n' s) >= 5);
  let s2 = Xmtsim.Floorplan.render_numeric ~grid_w:4 v in
  Tu.check_bool "numeric" true (String.length s2 > 16)

let profiler_detects_phases () =
  let src = {|
int A[2048];
int B[2048];
int main(void) {
  spawn(0, 511) {
    int x = A[$];
    int k;
    for (k = 0; k < 30; k++) x = (x * 3 + 1) & 65535;
    B[$] = x;
  }
  spawn(0, 511) {
    int k;
    for (k = 0; k < 8; k++) {
      B[($ * 4 + k * 53) & 2047] = A[($ * 4 + k * 97) & 2047];
    }
  }
  return 0;
}
|} in
  let compiled = Core.Toolchain.compile src in
  let m = Core.Toolchain.machine ~config:C.fpga64 compiled in
  let p = Xmtsim.Profiler.attach ~interval:500 m in
  ignore (M.run m);
  let rendered = Xmtsim.Plugin.render_profile p in
  let has sub =
    let rec find i =
      if i + String.length sub > String.length rendered then false
      else if String.sub rendered i (String.length sub) = sub then true
      else find (i + 1)
    in
    find 0
  in
  Tu.check_bool "sees a compute phase" true (has "compute-intensive");
  Tu.check_bool "sees a memory phase" true (has "memory-intensive")

let dvfs_from_activity_plugin () =
  (* an activity plug-in throttles the cluster clock mid-run (§III-B) *)
  let src = Core.Kernels.par_comp ~threads:8 ~iters:200 in
  let compiled = Core.Toolchain.compile src in
  let baseline =
    (Core.Toolchain.run_cycle ~config:C.tiny compiled).Core.Toolchain.cycles
  in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  M.add_activity_plugin m ~name:"throttle" ~interval:200 (fun m _ ->
      M.set_period m M.Clusters 3);
  let r = M.run m in
  Tu.check_bool
    (Printf.sprintf "throttled (%d) slower than baseline (%d)" r.M.cycles baseline)
    true
    (r.M.cycles > baseline + 100)

(* ------------------------------------------------------------------ *)
(* Functional-mode incremental interface + phase sampling (§III-F) *)

let functional_advance_pauses_at_boundaries () =
  let src = Core.Kernels.reduce_tree ~n:64 in
  let compiled = Core.Toolchain.compile src in
  let st = Xmtsim.Functional_mode.init compiled.Core.Toolchain.image in
  let status = Xmtsim.Functional_mode.advance st ~budget:10 in
  Tu.check_bool "paused" true (status = `Paused);
  Tu.check_bool "made progress" true (Xmtsim.Functional_mode.instructions st >= 10);
  (* run to completion *)
  let rec drain () =
    match Xmtsim.Functional_mode.advance st ~budget:1000 with
    | `Halted -> ()
    | `Paused -> drain ()
  in
  drain ();
  Tu.check_bool "halted" true (Xmtsim.Functional_mode.halted st);
  (* same output as the one-shot runner *)
  let one = Xmtsim.Functional_mode.run compiled.Core.Toolchain.image in
  Tu.check_string "same output" one.Xmtsim.Functional_mode.output
    (Xmtsim.Functional_mode.output st)

let functional_snapshot_handoff () =
  (* fast-forward half the program functionally, hand the state to the
     cycle machine, finish there: the final output must match *)
  let a = Core.Workloads.random_array ~seed:3 ~n:64 ~bound:50 in
  let memmap = Isa.Memmap.of_ints [ ("A", a) ] in
  let compiled = Core.Toolchain.compile ~memmap (Core.Kernels.reduce_tree ~n:64) in
  let img = compiled.Core.Toolchain.image in
  let st = Xmtsim.Functional_mode.init img in
  ignore (Xmtsim.Functional_mode.advance st ~budget:200);
  Tu.check_bool "not yet halted" false (Xmtsim.Functional_mode.halted st);
  let snap = Xmtsim.Functional_mode.snapshot st in
  let m = M.create ~config:C.tiny img in
  M.restore m snap;
  let r = M.run m in
  Tu.check_bool "halted on machine" true r.M.halted;
  Tu.check_string "correct final output"
    (string_of_int (Core.Reference.sum a))
    r.M.output

let phase_sampling_accuracy () =
  let src = {|
int A[2048];
int B[2048];
int main(void) {
  int round;
  for (round = 0; round < 12; round++) {
    spawn(0, 511) {
      int x = A[$] + round;
      int k;
      for (k = 0; k < 8; k++) x = (x * 3 + 1) & 65535;
      B[$] = x;
    }
  }
  print_int(B[0]);
  return 0;
}
|} in
  let compiled = Core.Toolchain.compile src in
  let img = compiled.Core.Toolchain.image in
  let full = Core.Toolchain.run_cycle ~config:C.fpga64 compiled in
  let est =
    Xmtsim.Phase_sampling.estimate ~config:C.fpga64 ~interval:8000 img
  in
  let err =
    abs_float
      (float_of_int est.Xmtsim.Phase_sampling.estimated_cycles
      -. float_of_int full.Core.Toolchain.cycles)
    /. float_of_int full.Core.Toolchain.cycles
  in
  Tu.check_bool
    (Printf.sprintf "estimate %d within 25%% of %d"
       est.Xmtsim.Phase_sampling.estimated_cycles full.Core.Toolchain.cycles)
    true (err < 0.25);
  Tu.check_bool "sampled a fraction of the instructions" true
    (est.Xmtsim.Phase_sampling.sampled_instructions * 2
    < est.Xmtsim.Phase_sampling.total_instructions);
  Tu.check_bool "found repeated phases" true
    (est.Xmtsim.Phase_sampling.phases < est.Xmtsim.Phase_sampling.intervals)

(* ------------------------------------------------------------------ *)
(* Analytic timing verification: the stand-in for the paper's validation
   against the 64-TCU FPGA prototype (§III).  Every latency parameter must
   show up in end-to-end cycle counts exactly as configured. *)

let vcfg = C.with_overrides C.tiny [ "icn_jitter=0" ]

let vrun asm =
  let img = Isa.Program.resolve (Isa.Asm.parse asm) in
  let m = M.create ~config:vcfg img in
  (M.run m).M.cycles

let serial_prog n extra =
  Printf.sprintf "main:\n%s%s  halt\n  .data\nA: .word 7\n"
    (String.concat "" (List.init n (fun _ -> "  addi $t0, $t0, 1\n")))
    extra

let timing_alu_is_one_cycle () =
  Tu.check_int "10 extra ALU ops cost 10 cycles" 10
    (vrun (serial_prog 20 "") - vrun (serial_prog 10 ""))

let timing_shared_fu_latencies () =
  let base = vrun (serial_prog 10 "") in
  Tu.check_int "mul costs mul_latency" vcfg.C.mul_latency
    (vrun (serial_prog 10 "  mul $t1, $t0, $t0\n") - base);
  Tu.check_int "div costs div_latency" vcfg.C.div_latency
    (vrun (serial_prog 10 "  div $t1, $t0, $t0\n") - base);
  Tu.check_int "fpu op costs fpu_latency" vcfg.C.fpu_latency
    (vrun (serial_prog 10 "  add.s $f1, $f2, $f3\n") - base);
  Tu.check_int "sqrt costs sqrt_latency" vcfg.C.sqrt_latency
    (vrun (serial_prog 10 "  sqrt.s $f1, $f2\n") - base)

let timing_master_cache () =
  let base = vrun (serial_prog 10 "  la $t2, A\n") in
  let miss = vrun (serial_prog 10 "  la $t2, A\n  lw $t3, 0($t2)\n") in
  let hit = vrun (serial_prog 10 "  la $t2, A\n  lw $t3, 0($t2)\n  lw $t4, 0($t2)\n") in
  Tu.check_int "cold miss = dram + hit latency"
    (vcfg.C.dram_latency + vcfg.C.master_cache_hit_latency)
    (miss - base);
  Tu.check_int "hit = master_cache_hit_latency" vcfg.C.master_cache_hit_latency
    (hit - miss)

let spawn_one_thread extra =
  Printf.sprintf
    {|
main:
  li $t0, 0
  li $t1, 0
  spawn $t0, $t1
Ld:
  li $t2, 1
  ps $t2, $g8
  chkid $t2
%s  j Ld
  join
  halt
  .data
A: .word 7
|}
    extra

let timing_tcu_load_round_trip () =
  let base = vrun (spawn_one_thread "") in
  let one = vrun (spawn_one_thread "  la $t3, A\n  lw $t4, 0($t3)\n") in
  let two =
    vrun (spawn_one_thread "  la $t3, A\n  lw $t4, 0($t3)\n  lw $t5, 0($t3)\n")
  in
  (* round trip = send icn + deliver + [dram on miss] + module hit latency
     + return icn + accept; the la adds its own cycle *)
  Tu.check_int "cold load round trip"
    ((2 * vcfg.C.icn_latency) + vcfg.C.dram_latency + vcfg.C.cache_hit_latency + 2 + 1)
    (one - base);
  Tu.check_int "warm load round trip"
    ((2 * vcfg.C.icn_latency) + vcfg.C.cache_hit_latency + 2)
    (two - one)

let timing_dvfs_scales_linearly () =
  (* doubling every clock period must exactly double pure-ALU runtime *)
  let prog = serial_prog 64 "" in
  let img = Isa.Program.resolve (Isa.Asm.parse prog) in
  let run_with p =
    let m = M.create ~config:vcfg img in
    List.iter (fun d -> M.set_period m d p) [ M.Clusters; M.Icn; M.Caches; M.Dram ];
    (M.run m).M.cycles
  in
  let c1 = run_with 1 and c2 = run_with 2 in
  Tu.check_bool
    (Printf.sprintf "period 2 doubles ALU-bound time (%d vs 2x%d)" c2 c1)
    true
    (abs (c2 - (2 * c1)) <= 2)

(* ------------------------------------------------------------------ *)
(* Clock gating (§III-C): sleeping idle domains must be invisible to
   everything simulated — output, cycle counts, stats — and only reduce
   the host-side event count. *)

let gating_src =
  {|
int A[128];
int total = 0;
int main(void) {
  int r;
  int acc = 0;
  for (r = 0; r < 4; r++) {
    spawn(0, 127) {
      int v = A[$] + r;
      psm(v, total);
    }
  }
  for (r = 0; r < 64; r++) {
    acc = acc + A[(r * 97) % 128];
  }
  print_int(total + acc);
  return 0;
}
|}

let gating_bit_identical () =
  let compiled = Core.Toolchain.compile gating_src in
  let go gating =
    let m = Core.Toolchain.machine ~config:C.tiny compiled in
    M.set_gating m gating;
    let r = M.run m in
    (r, m)
  in
  let rg, mg = go true in
  let ru, mu = go false in
  Tu.check_bool "gating defaults on" true (M.gating_enabled mg);
  Tu.check_string "same output" ru.M.output rg.M.output;
  Tu.check_int "same cycles" ru.M.cycles rg.M.cycles;
  let key m =
    let s = M.stats m in
    Xmtsim.Stats.
      (s.cache_hits, s.cache_misses, s.icn_packets, s.dram_reads, s.psm_ops)
  in
  Tu.check_bool "same cache/ICN/DRAM counters" true (key mu = key mg);
  Tu.check_bool "fewer host events when gated" true
    (M.events_processed mg < M.events_processed mu)

let gating_exports_clock_metrics () =
  (* a serial memory-bound run parks every domain during DRAM stalls *)
  let compiled = Core.Toolchain.compile (Core.Kernels.ser_mem ~iters:50 ~n:256) in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let r = M.run m in
  Tu.check_bool "halted" true r.M.halted;
  let reg = Obs.Metrics.create () in
  M.export_clocks m reg;
  let cnt name dom =
    match Obs.Metrics.counter_value reg ~labels:[ ("domain", dom) ] name with
    | Some v -> v
    | None -> -1
  in
  Tu.check_bool "cluster ticks exported" true (cnt "sim.clock.ticks" "clusters" > 0);
  Tu.check_bool "icn gated whole run" true (cnt "sim.clock.skipped_ticks" "icn" > 0);
  Tu.check_bool "dram gated" true (cnt "sim.clock.skipped_ticks" "dram" > 0);
  Tu.check_bool "caches gated" true (cnt "sim.clock.skipped_ticks" "caches" > 0)

let restore_short_regfile_snapshot () =
  (* snapshots from a smaller register file must restore (pre-fix: the
     blits hardcoded length 32 and raised Invalid_argument) *)
  let compiled =
    Core.Toolchain.compile "int main() { print_int(7); return 0; }"
  in
  let img = compiled.Core.Toolchain.image in
  let m = M.create ~config:C.tiny img in
  let snap =
    M.make_snapshot ~mem:(Xmtsim.Mem.load img) ~regs:(Array.make 8 0)
      ~fregs:(Array.make 8 0.0) ~pc:img.Isa.Program.entry
      ~globals:(Array.make Isa.Reg.num_globals 0) ~output:""
  in
  M.restore m snap;
  Tu.check_string "runs after restore" "7" (M.run m).M.output

let halt_restore_rerun () =
  (* Regression for the stale budget-stop: run 1 arms a stop at 1.5x the
     halt cycle; pre-fix that unconsumed stop survived the halt and
     truncated the restored rerun.  Also exercises the restore path waking
     a gated cluster clock after a halt parked every domain. *)
  let compiled =
    Core.Toolchain.compile
      {|
int A[64];
int main(void) {
  spawn(0, 63) { A[$] = $; }
  print_int(A[5] + A[60]);
  return 0;
}
|}
  in
  let straight = Core.Toolchain.run_cycle ~config:C.tiny compiled in
  let c1 = straight.Core.Toolchain.cycles in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  let snap = M.checkpoint m in
  let r1 = M.run ~max_cycles:(c1 + (c1 / 2)) m in
  Tu.check_bool "first run halts" true r1.M.halted;
  M.restore m snap;
  let r2 = M.run ~max_cycles:(c1 * 3) m in
  Tu.check_bool "restored rerun halts" true r2.M.halted;
  Tu.check_string "restored rerun output" straight.Core.Toolchain.output
    r2.M.output

let gating_rejects_late_toggle () =
  let compiled =
    Core.Toolchain.compile "int main() { print_int(1); return 0; }"
  in
  let m = Core.Toolchain.machine ~config:C.tiny compiled in
  ignore (M.run m);
  Alcotest.check_raises "set_gating after start"
    (M.Sim_error "set_gating must be called before the first run") (fun () ->
      M.set_gating m false)

let () =
  Alcotest.run "xmtsim"
    [
      ( "tags",
        [
          Tu.tc "basic" tags_basic;
          Tu.tc "lru eviction" tags_lru_eviction;
          Tu.tc "zero size" tags_zero_size;
        ] );
      ( "prefetch buffer",
        [
          Tu.tc "fill and hit" pbuf_fill_and_hit;
          Tu.tc "fifo eviction" pbuf_fifo_eviction;
          Tu.tc "lru eviction" pbuf_lru_eviction;
          Tu.tc "waiter" pbuf_waiter;
          Tu.tc "size zero" pbuf_size_zero;
        ] );
      ( "mem",
        [
          Tu.tc "image load" mem_image;
          Tu.tc "stack region" mem_stack_region;
          Tu.tc "faults" mem_faults;
        ] );
      ( "machine/asm",
        [
          Tu.tc "arith" asm_arith;
          Tu.tc "float" asm_float;
          Tu.tc "branches" asm_branches;
          Tu.tc "memory" asm_memory;
          Tu.tc "spawn/join" asm_spawn_join;
          Tu.tc "ps ids and bases" asm_ps_distributes_ids;
          Tu.tc "ps unit increment check" asm_ps_requires_unit_increment;
          Tu.tc "psm atomicity" asm_psm_atomicity;
          Tu.tc "broadcast region violation" asm_region_violation;
          Tu.tc "lw.ro read-only cache" asm_lwro_uses_rocache;
          Tu.tc "functional equals cycle" functional_equals_cycle;
          Tu.tc "functional counts instructions" functional_much_faster;
        ] );
      ( "timing",
        [
          Tu.tc "more TCUs faster" more_tcus_faster;
          Tu.tc "dvfs slows" dvfs_slows_execution;
          Tu.tc "slow dram hurts" slow_dram_hurts_memory_kernel;
          Tu.tc "prefetch buffers help" prefetch_buffers_help;
          Tu.tc "deterministic" deterministic_across_runs;
          Tu.tc "cycle budget" max_cycles_budget;
        ] );
      ( "plugins",
        [
          Tu.tc "hot locations" filter_plugin_hot_locations;
          Tu.tc "activity sampling" activity_plugin_called;
          Tu.tc "trace" trace_captures_instrs;
          Tu.tc "dvfs from plugin" dvfs_from_activity_plugin;
          Tu.tc "execution profile phases" profiler_detects_phases;
          Tu.tc "package trace stations" package_trace_stations;
        ] );
      ( "checkpoint",
        [
          Tu.tc "resume equivalence" checkpoint_resume_equivalence;
          Tu.tc "file roundtrip" checkpoint_file_roundtrip;
          Tu.tc "mid-run save/resume" checkpoint_mid_run;
          Tu.tc "telemetry survives restore" checkpoint_preserves_telemetry;
        ] );
      ( "governor",
        [
          Tu.tc "throttles and logs" governor_throttles_and_logs;
          Tu.tc "quiet on healthy run" governor_recovers;
        ] );
      ( "clock gating",
        [
          Tu.tc "gated run is bit-identical" gating_bit_identical;
          Tu.tc "sim.clock.* metrics" gating_exports_clock_metrics;
          Tu.tc "short-regfile snapshot restores" restore_short_regfile_snapshot;
          Tu.tc "halt/restore/rerun not truncated" halt_restore_rerun;
          Tu.tc "set_gating after start rejected" gating_rejects_late_toggle;
        ] );
      ( "timing verification",
        [
          Tu.tc "ALU is one cycle" timing_alu_is_one_cycle;
          Tu.tc "shared FU latencies" timing_shared_fu_latencies;
          Tu.tc "master cache" timing_master_cache;
          Tu.tc "TCU load round trip" timing_tcu_load_round_trip;
          Tu.tc "DVFS scales linearly" timing_dvfs_scales_linearly;
        ] );
      ( "phase sampling",
        [
          Tu.tc "advance pauses at boundaries" functional_advance_pauses_at_boundaries;
          Tu.tc "functional->cycle handoff" functional_snapshot_handoff;
          Tu.tc "estimate accuracy" phase_sampling_accuracy;
        ] );
      ( "power/thermal",
        [
          Tu.tc "power sampling" power_sampling;
          Tu.tc "per-cluster attribution" per_cluster_activity_attribution;
          Tu.tc "thermal model" thermal_heats_and_cools;
          Tu.tc "floorplan render" floorplan_renders;
        ] );
    ]
